// SeaweedNode: the per-endsystem Seaweed protocol engine (§3).
//
// One SeaweedNode is attached to each PastryNode as its application. It
// implements the three protocol planes:
//
//  1. Metadata replication — periodic pushes of the local data summary and
//     availability model to the k numerically closest neighbors, plus
//     anti-entropy on neighbor arrival and down-time bookkeeping on
//     neighbor failure (§3.2).
//  2. Query dissemination and completeness prediction — divide-and-conquer
//     namespace-range broadcast; terminal ranges are those inside the
//     handling node's "cell" (the region it is numerically closest to,
//     derived from its leafset), which is exactly where its metadata
//     replicas live; per-range predictors are aggregated back up the
//     dynamically built distribution tree with timeout-driven reissue
//     (§3.3).
//  3. Result aggregation — results flow up the vertex tree defined by the
//     function V; each interior vertex is a replica group (primary + m
//     backups) holding versioned per-child results, giving exactly-once
//     counting with incremental updates (§3.4).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <tuple>
#include <unordered_map>

#include "obs/obs.h"
#include "overlay/overlay_network.h"
#include "seaweed/data_provider.h"
#include "seaweed/metadata.h"
#include "seaweed/vertex_function.h"
#include "seaweed/wire.h"

namespace seaweed {

// A selectively-replicated view (§3.2.2): `sql` is an aggregate query each
// endsystem evaluates locally at metadata-push time; the result rides along
// with the metadata to the replica set.
struct ReplicatedView {
  std::string name;
  std::string sql;
};

struct SeaweedConfig {
  int metadata_replicas = 8;            // k of Table 1 (sim uses 8)
  int vertex_backups = 3;               // m (§4.3.1)
  SimDuration summary_push_period = static_cast<SimDuration>(17.5 * kMinute);
  // Charge delta-encoded bytes for periodic summary re-pushes to replicas
  // that already hold the previous version (§3.2.2 optimization). New
  // replica members always receive the full summary.
  bool delta_encoded_summaries = false;
  SimDuration child_timeout = 10 * kSecond;  // predictor reissue window
  int max_child_retries = 4;
  // After max_child_retries the subrange is reported as uncovered, but not
  // abandoned: while the query lives, the descriptor is re-sent at this
  // cadence until the child finally reports. A crashed-and-restarted node
  // loses every in-flight query with its process, so this refresh is the
  // only way it ever learns the query again. 0 disables.
  SimDuration dissem_refresh_period = 5 * kMinute;
  SimDuration exec_delay = 500 * kMillisecond;  // local query execution time
  SimDuration result_ack_timeout = 10 * kSecond;
  // Result-plane retry bounds: unacked submits back off exponentially from
  // result_ack_timeout up to max_retry_backoff and give up (until the next
  // periodic refresh) after max_result_retries attempts. Unbounded fixed-
  // interval retries melt down under injected loss bursts; no bound at all
  // silently loses contributions.
  int max_result_retries = 8;
  SimDuration max_retry_backoff = 2 * kMinute;
  // A vertex handover of the same (query, vertex, child, version) seen twice
  // within this window means two nodes disagree about vertex ownership
  // (mid-repair leafsets); the second arrival is accepted locally instead of
  // bouncing forever.
  SimDuration handover_loop_window = 5 * kSecond;
  SimDuration result_refresh_period = 15 * kMinute;
  SimDuration result_deliver_debounce = 2 * kSecond;
  SimDuration query_sweep_period = 10 * kMinute;
  // Views included in every metadata push (empty = none).
  std::vector<ReplicatedView> views;

  // --- Multi-tenant pipeline (every knob off by default: strict no-op) ---
  // Shared-fate dissemination batching: direct-contact child dispatches are
  // held in a per-contact outbox for batch_flush_delay, then coalesced into
  // one kBroadcastBatch per hop. Retry/ack machinery is per entry, so a
  // partially-processed batch retries only the unacked descriptors.
  bool batching = false;
  SimDuration batch_flush_delay = 20 * kMillisecond;
  // Bounded-divergence predictor caching: a predictor computed for the same
  // (range, query shape) within cache_eps of now and against an unchanged
  // metadata store is served from cache, skipping the replica scan; the
  // reuse age rides the wire as the predictor's divergence. 0 disables.
  SimDuration cache_eps = 0;
  // Admission control: > 0 bounds queries this node will originate
  // concurrently; injections beyond the bound are load-shed with
  // Status::Unavailable (distinguishable from execution failures).
  // 0 = unbounded.
  int max_active_queries = 0;
  // SaGe-style time-sliced local execution: > 0 caps the ~1024-row batches
  // scanned per slice; long scans yield exec_slice_yield between slices so
  // concurrent queries interleave instead of convoying. 0 = one-shot.
  int exec_slice_batches = 0;
  SimDuration exec_slice_yield = 1 * kMillisecond;
};

// Origin-side observation hooks, invoked on the injecting endsystem.
struct QueryObserver {
  // Aggregated completeness predictor arrived (T_e after injection).
  std::function<void(const NodeId& query_id,
                     const CompletenessPredictor& predictor)>
      on_predictor;
  // Updated incremental result arrived from the root vertex.
  std::function<void(const NodeId& query_id, const db::AggregateResult&)>
      on_result;
};

class SeaweedNode : public overlay::PastryApp {
 public:
  SeaweedNode(overlay::OverlayNetwork* overlay, overlay::PastryNode* pastry,
              DataProvider* data, const SeaweedConfig& config);

  const NodeId& id() const { return pastry_->id(); }
  int index() const { return static_cast<int>(pastry_->address()); }

  // Injects a query from this endsystem. The observer's hooks fire as the
  // predictor and incremental results arrive. Fails on parse errors or
  // non-aggregate queries. A non-empty `id_salt` pins the queryId (and so
  // the aggregation-tree shape) — see Query::Create.
  Result<NodeId> InjectQuery(const std::string& sql, QueryObserver observer,
                             SimDuration ttl = 48 * kHour,
                             const std::string& id_salt = "");

  // Injects a continuous query: every endsystem re-executes the query each
  // `period` and the origin keeps receiving refreshed aggregates until the
  // TTL expires or the query is cancelled.
  Result<NodeId> InjectContinuousQuery(const std::string& sql,
                                       SimDuration period,
                                       QueryObserver observer,
                                       SimDuration ttl = 48 * kHour);

  // Cancels an active query (normally called on the origin). The
  // cancellation spreads epidemically through leafset gossip; every node
  // drops the query's state on notice, and a tombstone suppresses
  // re-adoption from stragglers until the original TTL passes.
  void CancelQuery(const NodeId& query_id);

  // Queries a replicated view (§3.2.2 selective replication): the answer is
  // assembled from the view values stored in the metadata plane, so it
  // arrives with dissemination latency (seconds), covers every endsystem
  // ever seen — up or down — and is stale by at most a push period.
  // The observer's on_result fires once with the assembled snapshot.
  Result<NodeId> QueryViewSnapshot(const std::string& view_name,
                                   QueryObserver observer);

  // --- PastryApp ---
  void OnAppMessage(const overlay::NodeHandle& from, bool routed,
                    const NodeId& key, WireMessagePtr payload) override;
  void OnJoined() override;
  void OnStopping() override;
  void OnNeighborFailed(const overlay::NodeHandle& neighbor) override;
  void OnNeighborAdded(const overlay::NodeHandle& neighbor) override;
  void OnAppSendFailed(const overlay::NodeHandle& dead,
                       WireMessagePtr payload) override;

  // --- Introspection (tests, benches) ---
  const AvailabilityModel& own_availability_model() const { return own_model_; }
  const MetadataStore& metadata_store() const { return metadata_; }
  size_t active_query_count() const { return active_.size(); }
  bool HasActiveQuery(const NodeId& query_id) const {
    return active_.count(query_id) > 0;
  }
  // Admission control: true when this node already originates
  // max_active_queries queries and a new injection would be shed.
  bool AtAdmissionLimit() const;

 private:
  struct ChildRange {
    IdRange range;
    overlay::NodeHandle contact;  // where we sent it (may be re-resolved)
    bool via_routing = false;     // sent by key-routing (no known contact)
    int tries = 0;
    // Dispatch epoch: each (re)issue bumps it and arms a timer carrying the
    // new value; a firing timer whose epoch is stale was superseded by a
    // faster reissue (the drop-notice path) and must not double-dispatch.
    int attempt = 0;
    bool done = false;
    // A predictor report actually arrived (done alone can also mean "gave
    // up"); gates the slow re-dissemination refresh.
    bool reported = false;
  };

  // One outstanding dissemination task: a range this node must cover and
  // report a predictor for.
  struct RangeTask {
    IdRange range;
    overlay::NodeHandle parent;
    bool report_to_origin = false;  // we are the tree root
    CompletenessPredictor acc;
    db::AggregateResult view_acc;   // view-snapshot queries accumulate here
    std::map<std::string, ChildRange> children;
    bool finished = false;
  };

  struct VertexState {
    std::map<NodeId, std::pair<uint64_t, db::AggregateResult>> children;
    uint64_t version = 0;         // our version as a child of our parent
    bool send_scheduled = false;
    // Backups known to hold this vertex's full state; others get a full
    // sync before deltas (a delta-only backup would reconstruct a partial
    // subtree after primary failover).
    std::set<NodeId> synced_backups;
    bool repropagate_scheduled = false;
    // Upward-submit ack tracking: the version sent to our parent and not
    // yet acked (0 = nothing outstanding), and how many timeouts in a row
    // have fired for it.
    uint64_t pending_version = 0;
    int submit_tries = 0;
  };

  struct PendingSubmit {
    NodeId vertex_id;
    uint64_t version = 0;
    db::AggregateResult result;
    bool acked = false;
    int tries = 0;
  };

  struct ActiveQuery {
    Query query;
    std::map<std::string, RangeTask> tasks;
    std::map<NodeId, VertexState> vertices;
    PendingSubmit leaf;           // our own contribution
    bool executed = false;
    // Origin-side state (only on the injecting endsystem).
    bool is_origin = false;
    QueryObserver observer;
    // Origin-side lifecycle spans: the query root, injection -> first
    // aggregated predictor, and injection -> first delivered result.
    obs::SpanId root_span = obs::kNoSpan;
    obs::SpanId dissem_span = obs::kNoSpan;
    obs::SpanId result_span = obs::kNoSpan;
    // Per-query egress accounting ("query.<id>.tx_bytes"), resolved lazily
    // on the first send this node makes for the query.
    obs::Counter* tx_bytes = nullptr;
  };

  // Pending coalesced dispatches for one direct contact (batching).
  struct Outbox {
    overlay::NodeHandle contact;
    std::vector<SeaweedMessage::BatchEntry> entries;
    bool flush_scheduled = false;
  };

  // Bounded-divergence predictor cache entry: valid while the metadata
  // store's epoch is unchanged and now - computed_at <= cache_eps.
  struct CachedPredictor {
    CompletenessPredictor predictor;
    SimTime computed_at = 0;
    uint64_t metadata_epoch = 0;
  };

  Scheduler* sim() const { return overlay_->simulator(); }

  // --- Metadata plane ---
  void PushMetadataTick(uint64_t generation);
  void PushMetadataTo(const overlay::NodeHandle& to, bool allow_delta = false);
  // Drops records of owners believed up that we no longer qualify as a
  // replica for (safe any time: live owners re-push every period). Records
  // of down owners are only evicted by the periodic tick.
  void EvictLiveOwnerRecords();
  std::vector<overlay::NodeHandle> ReplicaSet() const;
  bool LikelyReplicaFor(const NodeId& owner,
                        const overlay::NodeHandle& holder) const;

  // --- Dissemination plane ---
  void HandleBroadcast(const overlay::NodeHandle& from,
                       const SeaweedMessagePtr& msg);
  void ProcessRange(ActiveQuery& aq, const IdRange& range,
                    const overlay::NodeHandle& parent, bool report_to_origin);
  // Terminal handling: fills `out` with this node's predictor for `range`.
  void GeneratePredictorFor(ActiveQuery& aq, const IdRange& range,
                            CompletenessPredictor* out);
  // Terminal handling for view snapshots: merges this node's own view value
  // (if in range) and the stored view values of down owners into `out`.
  void GenerateViewFor(ActiveQuery& aq, const IdRange& range,
                       db::AggregateResult* out);
  IdRange MyCell() const;
  bool CoveredByLeafset(const IdRange& range) const;
  void DispatchChild(ActiveQuery& aq, RangeTask& task, ChildRange& child);
  // Batching: queues the child descriptor in the contact's outbox and
  // schedules a deterministic flush; the child's retry timer is armed at
  // enqueue time exactly as for an immediate send.
  void EnqueueBatchedDispatch(ActiveQuery& aq, ChildRange& child);
  void FlushOutbox(const NodeId& contact_id);
  void HandleBroadcastBatch(const overlay::NodeHandle& from,
                            const SeaweedMessagePtr& msg);
  // Drop-notice fast path shared by kBroadcast and kBroadcastBatch entries:
  // reissues the child covering (query_id, range) via routing.
  void ReissueChildOnDrop(const NodeId& query_id, const IdRange& range);
  // Slow-cadence descriptor refresh for a child range whose fast retry
  // chain was exhausted; runs until the child reports or the query dies.
  void ArmChildRedissemination(const NodeId& query_id,
                               const std::string& task_token,
                               const std::string& child_token);
  void CheckTaskTimeout(const NodeId& query_id, const std::string& token);
  void FinishTaskIfDone(ActiveQuery& aq, RangeTask& task);
  void ReportTask(ActiveQuery& aq, RangeTask& task);
  void HandlePredictorReport(const SeaweedMessagePtr& msg);

  // --- Result plane ---
  void EnsureQueryActive(const Query& query);
  void ScheduleLocalExecution(const NodeId& query_id);
  void ExecuteAndSubmit(const NodeId& query_id);
  // Time-sliced execution: runs one quantum of `exec` and either yields
  // (rescheduling itself) or submits the finished leaf result.
  void StepSlicedExecution(const NodeId& query_id,
                           std::shared_ptr<SlicedExecution> exec,
                           obs::SpanId span);
  void FinishLeafExecution(const NodeId& query_id, db::AggregateResult result);
  NodeId LeafParentVertex(const Query& query) const;
  bool IsLikelyRootFor(const NodeId& key) const;
  void SubmitLeafResult(const NodeId& query_id);
  void RetryLeafSubmit(const NodeId& query_id, uint64_t version);
  void HandleResultSubmit(const overlay::NodeHandle& from,
                          const SeaweedMessagePtr& msg);
  void PropagateVertex(const NodeId& query_id, const NodeId& vertex_id);
  // Arms the ack timeout for an interior submit of `version`; on expiry the
  // vertex re-propagates (with a fresh version) up to max_result_retries
  // times with exponential backoff.
  void ArmVertexAckTimeout(const NodeId& query_id, const NodeId& vertex_id,
                           uint64_t version, int tries);
  // Periodic upward re-propagation: repairs aggregates lost to vertex
  // primary failover anywhere above us within one refresh period.
  void ScheduleVertexRepropagation(const NodeId& query_id,
                                   const NodeId& vertex_id);
  void ReplicateVertex(ActiveQuery& aq, const NodeId& vertex_id,
                       const NodeId& changed_child);
  db::AggregateResult MergedVertexResult(const VertexState& state) const;

  // --- Query lifecycle ---
  void HandleQueryListRequest(const overlay::NodeHandle& from);
  void HandleQueryList(const SeaweedMessagePtr& msg);
  void HandleQueryCancel(const SeaweedMessagePtr& msg);
  void SweepExpiredTick(uint64_t generation);

  void SendSeaweed(const overlay::NodeHandle& to, const SeaweedMessagePtr& msg,
                   TrafficCategory category);
  void RouteSeaweed(const NodeId& key, const SeaweedMessagePtr& msg,
                    TrafficCategory category);
  // Charges `bytes` of egress to the query's "query.<id>.tx_bytes" counter.
  void ChargeQueryTx(ActiveQuery& aq, uint32_t bytes);

  // Opens the origin-side lifecycle spans and bumps injection metrics.
  void StartQueryTrace(ActiveQuery& aq, const char* kind);

  overlay::OverlayNetwork* overlay_;
  overlay::PastryNode* pastry_;
  DataProvider* data_;
  SeaweedConfig config_;

  // Pre-resolved observability handles (system-wide instruments; each node
  // holds its own copies of the same pointers).
  struct Metrics {
    obs::Counter* queries_injected;
    obs::Counter* metadata_pushes;
    obs::Counter* metadata_rereplications;
    obs::Counter* predictor_merges;
    obs::Counter* dissem_reissues;
    obs::Counter* vertex_updates;
    obs::Counter* vertex_handovers;
    obs::Counter* vertex_repropagations;
    obs::Counter* vertex_fn_invocations;
    obs::Counter* leaf_retries;
    obs::Counter* leaf_giveups;
    obs::Counter* vertex_retries;
    obs::Counter* vertex_giveups;
    obs::Counter* handovers_suppressed;
    obs::Counter* duplicates_suppressed;
    obs::Counter* dissem_fastpath_reissues;
    obs::Counter* dissem_refreshes;
    obs::Counter* result_reroutes;
    obs::Counter* batch_flushes;
    obs::Counter* batch_entries;
    obs::Counter* pred_cache_hits;
    obs::Counter* pred_cache_misses;
    obs::Counter* queries_shed;
    obs::Counter* exec_slices;
    // Approximate-aggregate traffic: leaf submissions carrying sketch
    // states, interior folds of sketch-carrying children, and the encoded
    // sketch bytes placed on the wire (leaf + interior propagations).
    obs::Counter* sketch_results;
    obs::Counter* sketch_merges;
    obs::Counter* sketch_state_bytes;
    obs::Histogram* dissem_fanout;
    obs::Histogram* predictor_latency_us;
    obs::Histogram* result_latency_us;
  };
  Metrics metrics_;
  obs::TraceSink* tracer_;

  // Compiled plans keyed by query id: a long-running query re-executes
  // against local data every time the endsystem's contribution changes, and
  // re-binding the predicate each time would dominate small tables. Views
  // are NOT cached (their SQL re-parses with a fresh NOW() each push).
  db::PlanCache plan_cache_;

  // Persistent across down periods (§3.2.1: persisted at the endsystem).
  AvailabilityModel own_model_;
  SimTime went_down_at_ = -1;
  uint64_t metadata_version_ = 0;
  // Previous pushed summary (delta encoding) and the replicas known to hold
  // it; volatile — reset on rejoin so fresh replicas get full pushes.
  std::optional<db::DatabaseSummary> last_pushed_summary_;
  std::set<NodeId> replicas_with_summary_;
  // §3.4: the leaf "persists that vertexId with the query". Recomputing the
  // entry vertex after churn could inject our contribution at two depths of
  // the same chain and double-count it, so the first choice is sticky.
  std::map<NodeId, NodeId> persisted_leaf_vertex_;

  // Volatile (lost on failure, rebuilt on rejoin).
  MetadataStore metadata_;
  std::map<NodeId, ActiveQuery> active_;
  // Batching outboxes, keyed by contact id (std::map for deterministic
  // flush-callback content regardless of lane interleaving).
  std::map<NodeId, Outbox> outboxes_;
  // Predictor cache keyed by (range token, query fingerprint).
  std::map<std::pair<std::string, std::string>, CachedPredictor>
      predictor_cache_;
  // Cancelled-query tombstones: query_id -> expiry of the suppression.
  std::map<NodeId, SimTime> cancelled_;
  // (query, vertex, child, version) -> time we last forwarded that exact
  // submission to a "closer" node. Breaks handover ping-pong when two nodes'
  // leafsets disagree about vertex ownership mid-repair.
  std::map<std::tuple<NodeId, NodeId, NodeId, uint64_t>, SimTime>
      recent_handovers_;
  uint64_t generation_ = 0;
  Rng rng_;
};

}  // namespace seaweed
