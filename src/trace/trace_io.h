// Availability-trace persistence.
//
// A simple line-oriented text format so traces can be generated once,
// inspected with standard tools, and replayed across runs (or substituted
// with real measurement data in the same format):
//
//   # seaweed-availability-trace v1
//   endsystems <N> duration_us <D>
//   <endsystem-index>: <start_us>-<end_us> <start_us>-<end_us> ...
//
// Endsystems with no up intervals may be omitted.
#pragma once

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "trace/availability_trace.h"

namespace seaweed {

// Writes `trace` in the text format above.
Status SaveTrace(const AvailabilityTrace& trace, std::ostream& out);
Status SaveTraceToFile(const AvailabilityTrace& trace,
                       const std::string& path);

// Parses a trace; validates interval ordering.
Result<AvailabilityTrace> LoadTrace(std::istream& in);
Result<AvailabilityTrace> LoadTraceFromFile(const std::string& path);

}  // namespace seaweed
