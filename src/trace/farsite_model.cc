#include "trace/farsite_model.h"

#include <algorithm>

#include "common/logging.h"

namespace seaweed {

namespace {

// Emits alternating exponential up/down sessions over [0, duration).
void GenerateExponentialSessions(EndsystemAvailability* out, Rng& rng,
                                 SimDuration mean_up, SimDuration mean_down,
                                 SimDuration duration) {
  // Start in steady state: up with probability mean_up/(mean_up+mean_down).
  double p_up = static_cast<double>(mean_up) /
                static_cast<double>(mean_up + mean_down);
  bool up = rng.Bernoulli(p_up);
  SimTime t = 0;
  // If starting mid-session, the residual of an exponential is exponential.
  while (t < duration) {
    if (up) {
      SimTime end = t + static_cast<SimDuration>(
                            rng.Exponential(static_cast<double>(mean_up)));
      end = std::min<SimTime>(end, duration);
      if (end > t) out->Append({t, end});
      t = end;
      up = false;
    } else {
      t += static_cast<SimDuration>(
          rng.Exponential(static_cast<double>(mean_down)));
      up = true;
    }
  }
}

void GenerateDiurnal(EndsystemAvailability* out, Rng& rng,
                     const FarsiteModelConfig& cfg, SimDuration duration) {
  // Per-machine habitual arrival/departure hours.
  double arrive_h = std::clamp(
      rng.Normal(cfg.arrival_hour_mean, cfg.arrival_hour_stddev), 5.0, 12.0);
  double depart_h =
      std::clamp(rng.Normal(cfg.departure_hour_mean, cfg.departure_hour_stddev),
                 arrive_h + 4.0, 23.0);

  const int64_t num_days = duration / kDay + 1;
  SimTime up_since = -1;  // >= 0 while the machine is up

  auto jitter = [&]() {
    return static_cast<SimDuration>(
        rng.Normal(0.0, static_cast<double>(cfg.daily_jitter_stddev)));
  };
  auto close_session = [&](SimTime end) {
    end = std::min<SimTime>(end, duration);
    if (up_since >= 0 && end > up_since) {
      out->Append({up_since, end});
    }
    up_since = -1;
  };

  for (int64_t day = 0; day < num_days; ++day) {
    SimTime day_start = day * kDay;
    bool weekend = IsWeekend(day_start);

    if (weekend) {
      // Machines left on keep running through the weekend. Otherwise there
      // is a small chance of a short weekend session.
      if (up_since < 0 && rng.Bernoulli(cfg.weekend_session_prob)) {
        SimTime s = day_start +
                    static_cast<SimDuration>(rng.Uniform(9.0, 20.0) * kHour);
        SimTime e =
            s + static_cast<SimDuration>(rng.Uniform(0.5, 4.0) * kHour);
        if (s < duration) {
          out->Append({s, std::min<SimTime>(e, duration)});
        }
      }
      continue;
    }

    SimTime arrive =
        day_start + static_cast<SimDuration>(arrive_h * kHour) + jitter();
    SimTime depart =
        day_start + static_cast<SimDuration>(depart_h * kHour) + jitter();
    if (depart <= arrive) depart = arrive + kHour;

    if (up_since < 0) {
      // Came in this morning and turned the machine on.
      up_since = arrive;
    }
    // At departure time, decide whether the machine is left on overnight.
    if (!rng.Bernoulli(cfg.stay_on_overnight)) {
      close_session(depart);
    }
    if (up_since >= 0 && up_since >= duration) {
      up_since = -1;
    }
  }
  close_session(duration);
}

}  // namespace

AvailabilityTrace GenerateFarsiteTrace(const FarsiteModelConfig& config,
                                       int num_endsystems,
                                       SimDuration duration) {
  AvailabilityTrace trace(num_endsystems, duration);
  Rng master(config.seed);
  for (int i = 0; i < num_endsystems; ++i) {
    Rng rng = master.Split();
    double roll = rng.NextDouble();
    auto* out = &trace.endsystem(i);
    if (roll < config.server_fraction) {
      GenerateExponentialSessions(out, rng, config.server_mean_up,
                                  config.server_mean_down, duration);
    } else if (roll < config.server_fraction + config.diurnal_fraction) {
      GenerateDiurnal(out, rng, config, duration);
    } else {
      GenerateExponentialSessions(out, rng, config.churner_mean_up,
                                  config.churner_mean_down, duration);
    }
  }
  return trace;
}

}  // namespace seaweed
