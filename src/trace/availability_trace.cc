#include "trace/availability_trace.h"

#include <algorithm>

#include "common/logging.h"

namespace seaweed {

EndsystemAvailability::EndsystemAvailability(std::vector<UpInterval> up)
    : up_(std::move(up)) {
  for (size_t i = 0; i < up_.size(); ++i) {
    SEAWEED_CHECK_MSG(up_[i].start < up_[i].end, "empty or inverted interval");
    if (i > 0) {
      SEAWEED_CHECK_MSG(up_[i - 1].end <= up_[i].start,
                        "intervals must be sorted and disjoint");
    }
  }
}

size_t EndsystemAvailability::FirstIntervalEndingAfter(SimTime t) const {
  // Binary search on interval end.
  auto it = std::upper_bound(
      up_.begin(), up_.end(), t,
      [](SimTime v, const UpInterval& iv) { return v < iv.end; });
  return static_cast<size_t>(it - up_.begin());
}

bool EndsystemAvailability::IsUp(SimTime t) const {
  size_t i = FirstIntervalEndingAfter(t);
  return i < up_.size() && up_[i].start <= t;
}

SimTime EndsystemAvailability::NextUpAt(SimTime t) const {
  size_t i = FirstIntervalEndingAfter(t);
  if (i >= up_.size()) return kSimTimeMax;
  return std::max(t, up_[i].start);
}

SimTime EndsystemAvailability::NextDownAfter(SimTime t) const {
  size_t i = FirstIntervalEndingAfter(t);
  if (i >= up_.size()) return kSimTimeMax;
  return up_[i].end;
}

SimTime EndsystemAvailability::DownSince(SimTime t) const {
  if (IsUp(t)) return -1;
  // Last interval ending at or before t.
  size_t i = FirstIntervalEndingAfter(t);
  if (i == 0) return -1;  // never up before t
  return up_[i - 1].end;
}

SimDuration EndsystemAvailability::UpTimeIn(SimTime t0, SimTime t1) const {
  SimDuration total = 0;
  for (size_t i = FirstIntervalEndingAfter(t0); i < up_.size(); ++i) {
    if (up_[i].start >= t1) break;
    total += std::min(t1, up_[i].end) - std::max(t0, up_[i].start);
  }
  return total;
}

int EndsystemAvailability::DeparturesIn(SimTime t0, SimTime t1) const {
  int n = 0;
  for (size_t i = FirstIntervalEndingAfter(t0); i < up_.size(); ++i) {
    if (up_[i].end >= t1) break;
    ++n;
  }
  return n;
}

void EndsystemAvailability::Append(UpInterval iv) {
  SEAWEED_CHECK(iv.start < iv.end);
  if (!up_.empty()) {
    SEAWEED_CHECK_MSG(up_.back().end <= iv.start,
                      "Append out of order");
    if (up_.back().end == iv.start) {
      up_.back().end = iv.end;  // coalesce touching intervals
      return;
    }
  }
  up_.push_back(iv);
}

int AvailabilityTrace::CountUp(SimTime t) const {
  int n = 0;
  for (const auto& e : endsystems_) {
    if (e.IsUp(t)) ++n;
  }
  return n;
}

double AvailabilityTrace::MeanAvailability(SimTime t0, SimTime t1,
                                           SimDuration step) const {
  if (endsystems_.empty()) return 0;
  // Integrate exactly via up-time rather than sampling when step <= 0.
  if (step <= 0) {
    double up = 0;
    for (const auto& e : endsystems_) {
      up += static_cast<double>(e.UpTimeIn(t0, t1));
    }
    return up / (static_cast<double>(t1 - t0) *
                 static_cast<double>(endsystems_.size()));
  }
  double sum = 0;
  int samples = 0;
  for (SimTime t = t0; t < t1; t += step) {
    sum += static_cast<double>(CountUp(t)) /
           static_cast<double>(endsystems_.size());
    ++samples;
  }
  return samples ? sum / samples : 0;
}

double AvailabilityTrace::ChurnRate(SimTime t0, SimTime t1) const {
  if (endsystems_.empty() || t1 <= t0) return 0;
  int64_t transitions = 0;
  for (const auto& e : endsystems_) {
    for (const auto& iv : e.intervals()) {
      if (iv.start > t0 && iv.start < t1) ++transitions;  // join
      if (iv.end > t0 && iv.end < t1) ++transitions;      // leave
    }
  }
  return static_cast<double>(transitions) /
         (static_cast<double>(endsystems_.size()) * ToSeconds(t1 - t0));
}

double AvailabilityTrace::DepartureRatePerOnline(SimTime t0, SimTime t1) const {
  if (endsystems_.empty() || t1 <= t0) return 0;
  int64_t departures = 0;
  double online_seconds = 0;
  for (const auto& e : endsystems_) {
    departures += e.DeparturesIn(t0, t1);
    online_seconds += ToSeconds(e.UpTimeIn(t0, t1));
  }
  return online_seconds > 0 ? static_cast<double>(departures) / online_seconds
                            : 0;
}

std::vector<double> AvailabilityTrace::DiurnalProfile(SimTime t0,
                                                      SimTime t1) const {
  std::vector<double> sum(24, 0.0);
  std::vector<int> count(24, 0);
  for (SimTime t = t0; t < t1; t += kHour) {
    int h = HourOfDay(t);
    sum[static_cast<size_t>(h)] += static_cast<double>(CountUp(t)) /
                                   static_cast<double>(endsystems_.size());
    ++count[static_cast<size_t>(h)];
  }
  for (int h = 0; h < 24; ++h) {
    if (count[static_cast<size_t>(h)] > 0) {
      sum[static_cast<size_t>(h)] /= count[static_cast<size_t>(h)];
    }
  }
  return sum;
}

std::vector<double> AvailabilityTrace::HourlySamples(SimTime t0,
                                                     SimTime t1) const {
  std::vector<double> out;
  for (SimTime t = t0; t < t1; t += kHour) {
    out.push_back(static_cast<double>(CountUp(t)) /
                  static_cast<double>(endsystems_.size()));
  }
  return out;
}

}  // namespace seaweed
