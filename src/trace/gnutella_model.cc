#include "trace/gnutella_model.h"

#include <algorithm>
#include <cmath>

namespace seaweed {

AvailabilityTrace GenerateGnutellaTrace(const GnutellaModelConfig& config,
                                        int num_endsystems,
                                        SimDuration duration) {
  AvailabilityTrace trace(num_endsystems, duration);
  Rng master(config.seed);

  // Log-normal parameters giving the configured mean session length:
  // mean = exp(mu + sigma^2/2)  =>  mu = ln(mean) - sigma^2/2.
  const double sigma = config.session_sigma;
  const double mu =
      std::log(static_cast<double>(config.mean_session)) - sigma * sigma / 2.0;

  for (int i = 0; i < num_endsystems; ++i) {
    Rng rng = master.Split();
    auto* out = &trace.endsystem(i);
    double p_up = static_cast<double>(config.mean_session) /
                  static_cast<double>(config.mean_session +
                                      config.mean_downtime);
    bool up = rng.Bernoulli(p_up);
    SimTime t = 0;
    while (t < duration) {
      if (up) {
        SimTime end =
            t + std::max<SimDuration>(
                    kMinute, static_cast<SimDuration>(rng.LogNormal(mu, sigma)));
        end = std::min<SimTime>(end, duration);
        if (end > t) out->Append({t, end});
        t = end;
        up = false;
      } else {
        // Diurnal modulation: reconnects are more likely in the evening
        // (hour 18-23). Scale the mean downtime by the local rate.
        double hour = static_cast<double>(HourOfDay(t));
        double rate_scale =
            1.0 + config.diurnal_amplitude *
                      std::sin((hour - 12.0) / 24.0 * 2.0 * M_PI);
        double mean_down =
            static_cast<double>(config.mean_downtime) / rate_scale;
        t += std::max<SimDuration>(
            kMinute, static_cast<SimDuration>(rng.Exponential(mean_down)));
        up = true;
      }
    }
  }
  return trace;
}

}  // namespace seaweed
