// Synthetic generator calibrated to the Gnutella activity traces (Saroiu et
// al., MMCN 2002) as used by the Seaweed paper's high-churn experiment:
//
//   - 7,602 endsystems over a 60-hour window
//   - departure rate ~= 9.46e-5 departures / online endsystem / second
//     (mean online session ~2.9 hours)
//   - low mean availability (peers connect for short sessions)
//
// Sessions are drawn from a log-normal (heavy-tailed) distribution with the
// published mean; downtimes are exponential. A mild diurnal modulation is
// applied to session starts, as observed in the measurement study.
#pragma once

#include "common/rng.h"
#include "trace/availability_trace.h"

namespace seaweed {

struct GnutellaModelConfig {
  // Mean online session: 1 / 9.46e-5 s ~= 2.94 hours.
  SimDuration mean_session = static_cast<SimDuration>(2.94 * kHour);
  // Log-normal sigma for session lengths (heavier tail than exponential).
  double session_sigma = 1.0;
  // Mean downtime between sessions; chosen for ~0.4 mean availability.
  SimDuration mean_downtime = static_cast<SimDuration>(4.4 * kHour);
  // Amplitude of the diurnal modulation of reconnection rate, in [0, 1).
  double diurnal_amplitude = 0.25;
  uint64_t seed = 2;
};

AvailabilityTrace GenerateGnutellaTrace(const GnutellaModelConfig& config,
                                        int num_endsystems,
                                        SimDuration duration);

}  // namespace seaweed
