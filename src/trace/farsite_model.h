// Synthetic generator calibrated to the Farsite enterprise availability
// study (Bolosky et al., SIGMETRICS 2000) as summarized in the Seaweed paper:
//
//   - 51,663 endsystems, ~4 weeks, hourly pings
//   - mean availability 0.81 (Table 1: f_on)
//   - churn rate c ~= 6.9e-6 transitions / endsystem / second (Table 1)
//   - departure rate ~= 4.06e-6 departures / online endsystem / second
//   - pronounced diurnal pattern: machines come up when people arrive at
//     work (Fig 1), making many endsystems' up-events predictable
//
// The population mixes three machine classes:
//   * servers        — essentially always on, rare short outages
//   * diurnal desktops — on during work hours on weekdays; each evening the
//     owner leaves the machine on overnight with probability `stay_on`
//   * random churners — exponential up/down sessions (laptops, test boxes)
//
// These three classes jointly reproduce the published aggregates (verified
// by tests/trace_test.cc) and give the availability-model learner both
// periodic and non-periodic machines to classify, as the paper requires.
#pragma once

#include "common/rng.h"
#include "trace/availability_trace.h"

namespace seaweed {

struct FarsiteModelConfig {
  double server_fraction = 0.45;
  double diurnal_fraction = 0.30;
  // remainder are random churners

  // Servers.
  SimDuration server_mean_up = 30 * kDay;
  SimDuration server_mean_down = 2 * kHour;

  // Diurnal desktops. Arrival/departure are per-machine habits with daily
  // jitter on top.
  double arrival_hour_mean = 8.75;    // ~08:45
  double arrival_hour_stddev = 0.75;  // habit spread across machines
  double departure_hour_mean = 17.75;
  double departure_hour_stddev = 1.0;
  SimDuration daily_jitter_stddev = 20 * kMinute;
  double stay_on_overnight = 0.45;  // P(left on at departure time)
  double weekend_session_prob = 0.08;  // P(short weekend session per day)

  // Random churners.
  SimDuration churner_mean_up = 36 * kHour;
  SimDuration churner_mean_down = 14 * kHour;

  uint64_t seed = 1;
};

// Generates a trace of `num_endsystems` machines over [0, duration).
// Day 0 is a Monday, matching trace/time_types.h conventions.
AvailabilityTrace GenerateFarsiteTrace(const FarsiteModelConfig& config,
                                       int num_endsystems,
                                       SimDuration duration);

}  // namespace seaweed
