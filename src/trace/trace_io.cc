#include "trace/trace_io.h"

#include <fstream>
#include <sstream>

namespace seaweed {

namespace {
constexpr const char* kMagic = "# seaweed-availability-trace v1";
}

Status SaveTrace(const AvailabilityTrace& trace, std::ostream& out) {
  out << kMagic << "\n";
  out << "endsystems " << trace.num_endsystems() << " duration_us "
      << trace.duration() << "\n";
  for (int e = 0; e < trace.num_endsystems(); ++e) {
    const auto& ivs = trace.endsystem(e).intervals();
    if (ivs.empty()) continue;
    out << e << ":";
    for (const auto& iv : ivs) {
      out << " " << iv.start << "-" << iv.end;
    }
    out << "\n";
  }
  if (!out) return Status::IoError("write failed");
  return Status::OK();
}

Status SaveTraceToFile(const AvailabilityTrace& trace,
                       const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  return SaveTrace(trace, out);
}

Result<AvailabilityTrace> LoadTrace(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    return Status::ParseError("missing trace magic header");
  }
  std::string word;
  int n = -1;
  long long duration = -1;
  if (!std::getline(in, line)) {
    return Status::ParseError("missing trace size header");
  }
  {
    std::istringstream header(line);
    std::string k1, k2;
    if (!(header >> k1 >> n >> k2 >> duration) || k1 != "endsystems" ||
        k2 != "duration_us" || n < 0 || duration < 0) {
      return Status::ParseError("bad trace size header: " + line);
    }
  }
  AvailabilityTrace trace(n, static_cast<SimDuration>(duration));
  int line_no = 2;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    int index;
    char colon;
    if (!(ls >> index >> std::noskipws >> colon) || colon != ':') {
      return Status::ParseError("bad endsystem line " +
                                std::to_string(line_no));
    }
    if (index < 0 || index >= n) {
      return Status::ParseError("endsystem index out of range at line " +
                                std::to_string(line_no));
    }
    ls >> std::skipws;
    long long start, end;
    char dash;
    while (ls >> start >> dash >> end) {
      if (dash != '-' || start >= end) {
        return Status::ParseError("bad interval at line " +
                                  std::to_string(line_no));
      }
      trace.endsystem(index).Append(
          {static_cast<SimTime>(start), static_cast<SimTime>(end)});
    }
    if (!ls.eof()) {
      return Status::ParseError("trailing garbage at line " +
                                std::to_string(line_no));
    }
  }
  return trace;
}

Result<AvailabilityTrace> LoadTraceFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  return LoadTrace(in);
}

}  // namespace seaweed
