// Availability traces: per-endsystem up/down interval timelines.
//
// The paper drives all experiments from two measured traces — the Farsite
// study of 51,663 endsystems on the Microsoft corporate network (mean
// availability 0.81, churn 6.9e-6/s, strong diurnal pattern) and a Gnutella
// activity trace (7,602 endsystems, departure rate 9.46e-5/s). These traces
// are not public, so src/trace provides synthetic generators calibrated to
// the published aggregate statistics (see farsite_model.h / gnutella_model.h)
// plus this representation and its statistics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/time_types.h"

namespace seaweed {

// A half-open interval [start, end) during which an endsystem is up.
struct UpInterval {
  SimTime start;
  SimTime end;
};

// Timeline of one endsystem: sorted, disjoint up intervals.
class EndsystemAvailability {
 public:
  EndsystemAvailability() = default;
  explicit EndsystemAvailability(std::vector<UpInterval> up);

  const std::vector<UpInterval>& intervals() const { return up_; }

  // True if the endsystem is up at time t.
  bool IsUp(SimTime t) const;

  // Earliest time >= t at which the endsystem is up; kSimTimeMax if never.
  SimTime NextUpAt(SimTime t) const;

  // If up at t: the end of the current up interval. If down at t: the end of
  // the next up interval. kSimTimeMax if there is no later down transition.
  SimTime NextDownAfter(SimTime t) const;

  // Start of the most recent down period at time t (i.e. the end of the last
  // up interval before t). Returns -1 if the endsystem has never been up
  // before t or is currently up.
  SimTime DownSince(SimTime t) const;

  // Total up time within [t0, t1).
  SimDuration UpTimeIn(SimTime t0, SimTime t1) const;

  // Number of up->down transitions in [t0, t1).
  int DeparturesIn(SimTime t0, SimTime t1) const;

  // Appends an interval; must start at or after the end of the last one
  // (adjacent intervals are coalesced).
  void Append(UpInterval iv);

 private:
  // Index of the first interval with end > t, or up_.size().
  size_t FirstIntervalEndingAfter(SimTime t) const;
  std::vector<UpInterval> up_;
};

// A trace over a fixed horizon [0, duration) for N endsystems.
class AvailabilityTrace {
 public:
  AvailabilityTrace(int num_endsystems, SimDuration duration)
      : endsystems_(static_cast<size_t>(num_endsystems)),
        duration_(duration) {}

  int num_endsystems() const { return static_cast<int>(endsystems_.size()); }
  SimDuration duration() const { return duration_; }

  EndsystemAvailability& endsystem(int i) {
    return endsystems_[static_cast<size_t>(i)];
  }
  const EndsystemAvailability& endsystem(int i) const {
    return endsystems_[static_cast<size_t>(i)];
  }

  // --- Aggregate statistics (used for calibration & the Fig 1 bench) ---

  // Number of endsystems up at time t.
  int CountUp(SimTime t) const;

  // Mean fraction of endsystems up, sampled every `step` over [t0, t1).
  double MeanAvailability(SimTime t0, SimTime t1,
                          SimDuration step = kHour) const;

  // Transitions (up->down plus down->up) per endsystem per second in
  // [t0, t1) — the paper's churn rate c.
  double ChurnRate(SimTime t0, SimTime t1) const;

  // Departures per *online* endsystem-second in [t0, t1) — the metric the
  // paper reports for both traces (4.06e-6 Farsite, 9.46e-5 Gnutella).
  double DepartureRatePerOnline(SimTime t0, SimTime t1) const;

  // Fraction up by hour of day, averaged over [t0, t1): the diurnal profile
  // visible in Fig 1. Result has 24 entries.
  std::vector<double> DiurnalProfile(SimTime t0, SimTime t1) const;

  // Fraction of endsystems up at hourly sample points (the Fig 1 series).
  std::vector<double> HourlySamples(SimTime t0, SimTime t1) const;

 private:
  std::vector<EndsystemAvailability> endsystems_;
  SimDuration duration_;
};

}  // namespace seaweed
