// Anemone: the endsystem-based network-management application driving the
// paper's evaluation (§4.1).
//
// Each endsystem captures its network activity into two tables:
//   Packet(ts, SrcIP, DstIP, SrcPort, DstPort, Protocol, Direction, Bytes)
//   Flow(ts, Interval, SrcIP, DstIP, SrcPort, DstPort, LocalPort,
//        Protocol, App, Bytes, Packets)
// Flow is a per-flow 5-minute summary.
//
// The paper's dataset (a 3-week packet trace of 456 machines in the MSR
// building) is not public; this module synthesizes per-endsystem data with
// the properties the experiments depend on: strong volume heterogeneity
// (servers vs workstations), diurnal activity, realistic application / port
// mixes (so that predicates like SrcPort=80, App='SMB', LocalPort<1024 and
// Bytes>20000 select meaningfully skewed subsets), and heavy-tailed flow
// sizes.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "common/time_types.h"
#include "db/database.h"

namespace seaweed::anemone {

// The five indexed Flow columns (ts, SrcPort, LocalPort, Bytes, App) match
// the paper's "5 histograms per endsystem".
db::Schema FlowSchema();
db::Schema PacketSchema();

// The four evaluation queries of §4.3.2 (Figs 5-8). `now` is the Unix-second
// timestamp substituted for NOW(); the ts predicate in Q1 spans 24 hours.
extern const char* const kQueryHttpBytes;      // Fig 5
extern const char* const kQueryBigFlows;       // Fig 6
extern const char* const kQuerySmbAvg;         // Fig 7
extern const char* const kQueryPrivPorts;      // Fig 8

struct AnemoneConfig {
  // Trace horizon covered by the generated data, in days. Timestamps are
  // seconds since the simulated epoch (day 0 = Monday 00:00).
  int days = 21;
  // Mean Flow rows per *workstation* per day; servers generate ~20x more.
  double workstation_flows_per_day = 60;
  double server_flow_multiplier = 20.0;
  // Fraction of endsystems that are servers (high traffic, serve well-known
  // ports).
  double server_fraction = 0.08;
  // Rows of Packet generated per Flow row (0 disables the Packet table;
  // Packet is only needed when measuring the data-size parameter d).
  double packets_per_flow = 0.0;
  // Measurement interval recorded in Flow.Interval (the paper: 5 min).
  int interval_seconds = 300;
  uint64_t seed = 7;
};

// Statistics about one endsystem's generated dataset.
struct EndsystemDataStats {
  int64_t flow_rows = 0;
  int64_t packet_rows = 0;
  size_t data_bytes = 0;     // approximate in-memory footprint
  size_t summary_bytes = 0;  // serialized histogram metadata (the h of Table 1)
};

// Generates the Anemone dataset for endsystem `index` into `db` (creating
// the Flow — and optionally Packet — tables). Deterministic in
// (config.seed, index).
EndsystemDataStats GenerateEndsystemData(const AnemoneConfig& config,
                                         int index, db::Database* db);

// Estimated steady-state data generation rate implied by a config, in
// bytes/second per endsystem (the u parameter of the analytic models).
double EstimatedUpdateRate(const AnemoneConfig& config);

}  // namespace seaweed::anemone
