#include "anemone/anemone.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace seaweed::anemone {

using db::ColumnDef;
using db::ColumnType;
using db::Schema;

const char* const kQueryHttpBytes =
    "SELECT SUM(Bytes) FROM Flow WHERE SrcPort=80";
const char* const kQueryBigFlows =
    "SELECT COUNT(*) FROM Flow WHERE Bytes > 20000";
const char* const kQuerySmbAvg =
    "SELECT AVG(Bytes) FROM Flow WHERE App='SMB'";
const char* const kQueryPrivPorts =
    "SELECT SUM(Packets) FROM Flow WHERE LocalPort < 1024";

Schema FlowSchema() {
  return Schema({
      {"ts", ColumnType::kInt64, /*indexed=*/true},
      {"Interval", ColumnType::kInt64, false},
      {"SrcIP", ColumnType::kInt64, false},
      {"DstIP", ColumnType::kInt64, false},
      {"SrcPort", ColumnType::kInt64, /*indexed=*/true},
      {"DstPort", ColumnType::kInt64, false},
      {"LocalPort", ColumnType::kInt64, /*indexed=*/true},
      {"Protocol", ColumnType::kString, false},
      {"App", ColumnType::kString, /*indexed=*/true},
      {"Bytes", ColumnType::kInt64, /*indexed=*/true},
      {"Packets", ColumnType::kInt64, false},
  });
}

Schema PacketSchema() {
  return Schema({
      {"ts", ColumnType::kInt64, /*indexed=*/true},
      {"SrcIP", ColumnType::kInt64, false},
      {"DstIP", ColumnType::kInt64, false},
      {"SrcPort", ColumnType::kInt64, /*indexed=*/true},
      {"DstPort", ColumnType::kInt64, false},
      {"Protocol", ColumnType::kString, false},
      {"Direction", ColumnType::kString, false},
      {"Bytes", ColumnType::kInt64, /*indexed=*/true},
  });
}

namespace {

struct AppProfile {
  const char* name;
  int port;            // well-known port (0 = ephemeral both ends)
  const char* proto;   // TCP/UDP
  double weight_ws;    // relative frequency on workstations
  double weight_srv;   // relative frequency on servers
  double bytes_mu;     // log-normal parameters for flow bytes
  double bytes_sigma;
};

// Application mix modeled on enterprise traffic studies: web dominates by
// flow count, SMB/backup dominate by bytes, DNS is chatty but tiny.
const AppProfile kApps[] = {
    {"HTTP", 80, "TCP", 30, 18, std::log(15000.0), 1.6},
    {"HTTPS", 443, "TCP", 18, 10, std::log(9000.0), 1.5},
    {"SMB", 445, "TCP", 12, 25, std::log(80000.0), 1.9},
    {"DNS", 53, "UDP", 16, 12, std::log(280.0), 0.6},
    {"SMTP", 25, "TCP", 3, 8, std::log(20000.0), 1.4},
    {"LDAP", 389, "TCP", 5, 8, std::log(1200.0), 0.9},
    {"KERBEROS", 88, "UDP", 4, 6, std::log(600.0), 0.5},
    {"RPC", 135, "TCP", 4, 7, std::log(2500.0), 1.1},
    {"RDP", 3389, "TCP", 2, 3, std::log(120000.0), 1.7},
    {"OTHER", 0, "TCP", 6, 3, std::log(4000.0), 1.8},
};
constexpr int kNumApps = static_cast<int>(sizeof(kApps) / sizeof(kApps[0]));

// Relative flow arrival intensity by hour of day (weekday); enterprise
// traffic concentrates in working hours.
const double kHourWeight[24] = {
    0.2, 0.15, 0.12, 0.1, 0.1, 0.15, 0.35, 0.7, 1.2, 1.6, 1.7, 1.6,
    1.4, 1.6, 1.7, 1.6, 1.4, 1.1, 0.7, 0.5, 0.4, 0.35, 0.3, 0.25};

int EphemeralPort(Rng& rng) {
  return static_cast<int>(rng.UniformInt(1024, 65535));
}

}  // namespace

EndsystemDataStats GenerateEndsystemData(const AnemoneConfig& config,
                                         int index, db::Database* db) {
  Rng rng(config.seed * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(index));
  const bool is_server = rng.NextDouble() < config.server_fraction;

  // Per-endsystem volume heterogeneity on top of the class split:
  // log-normal multiplier keeps a heavy upper tail (busy machines).
  double volume_mult = rng.LogNormal(0.0, 0.8);
  double flows_per_day = config.workstation_flows_per_day * volume_mult *
                         (is_server ? config.server_flow_multiplier : 1.0);

  auto flow_result = db->CreateTable("Flow", FlowSchema());
  SEAWEED_CHECK(flow_result.ok());
  db::Table* flow = *flow_result;
  db::Table* packet = nullptr;
  if (config.packets_per_flow > 0) {
    auto packet_result = db->CreateTable("Packet", PacketSchema());
    SEAWEED_CHECK(packet_result.ok());
    packet = *packet_result;
  }

  const int64_t my_ip = 0x0A000000LL + index;  // 10.x.y.z
  std::vector<double> app_weights(kNumApps);
  for (int a = 0; a < kNumApps; ++a) {
    app_weights[static_cast<size_t>(a)] =
        is_server ? kApps[a].weight_srv : kApps[a].weight_ws;
  }

  EndsystemDataStats stats;
  for (int day = 0; day < config.days; ++day) {
    const bool weekend = ((day % 7) >= 5);
    const double day_factor = weekend ? 0.25 : 1.0;
    for (int hour = 0; hour < 24; ++hour) {
      // Expected flows this hour; normalize hour weights to sum ~ 24.
      double lambda = flows_per_day * day_factor * kHourWeight[hour] / 24.0 *
                      (24.0 / 18.8);  // 18.8 = sum of kHourWeight
      // Poisson-ish: draw count as rounded exponential-jittered mean.
      int count = static_cast<int>(lambda);
      if (rng.NextDouble() < lambda - count) ++count;
      for (int f = 0; f < count; ++f) {
        int a = static_cast<int>(rng.WeightedIndex(app_weights));
        const AppProfile& app = kApps[a];
        int64_t ts = static_cast<int64_t>(day) * 86400 + hour * 3600 +
                     rng.UniformInt(0, 3599);
        int64_t bytes = std::max<int64_t>(
            64, static_cast<int64_t>(rng.LogNormal(app.bytes_mu,
                                                   app.bytes_sigma)));
        int64_t packets = std::max<int64_t>(
            1, static_cast<int64_t>(static_cast<double>(bytes) /
                                    rng.Uniform(400.0, 1200.0)));

        int well_known = app.port != 0 ? app.port : EphemeralPort(rng);
        // Servers mostly terminate flows on their well-known ports; on
        // workstations the well-known port is the remote end.
        bool local_is_service =
            is_server ? rng.Bernoulli(0.85) : rng.Bernoulli(0.04);
        int local_port = local_is_service ? well_known : EphemeralPort(rng);
        int remote_port = local_is_service ? EphemeralPort(rng) : well_known;
        // Flow direction: which end appears as the source. Response-heavy
        // apps are usually recorded with the service end as source.
        bool service_is_src = rng.Bernoulli(0.5);
        int src_port = service_is_src ? well_known
                                      : (local_is_service ? remote_port
                                                          : local_port);
        int dst_port;
        if (service_is_src) {
          dst_port = local_is_service ? remote_port : local_port;
        } else {
          dst_port = well_known;
        }
        int64_t remote_ip = 0x0A000000LL + rng.UniformInt(0, 65535);

        flow->column(0).AppendInt64(ts);
        flow->column(1).AppendInt64(config.interval_seconds);
        flow->column(2).AppendInt64(service_is_src == local_is_service
                                        ? my_ip
                                        : remote_ip);
        flow->column(3).AppendInt64(service_is_src == local_is_service
                                        ? remote_ip
                                        : my_ip);
        flow->column(4).AppendInt64(src_port);
        flow->column(5).AppendInt64(dst_port);
        flow->column(6).AppendInt64(local_port);
        flow->column(7).AppendString(app.proto);
        flow->column(8).AppendString(app.name);
        flow->column(9).AppendInt64(bytes);
        flow->column(10).AppendInt64(packets);
        flow->CommitRow();
        ++stats.flow_rows;

        if (packet) {
          int pkts = static_cast<int>(config.packets_per_flow);
          if (rng.NextDouble() < config.packets_per_flow - pkts) ++pkts;
          for (int p = 0; p < pkts; ++p) {
            packet->column(0).AppendInt64(ts + rng.UniformInt(0, 299));
            packet->column(1).AppendInt64(my_ip);
            packet->column(2).AppendInt64(remote_ip);
            packet->column(3).AppendInt64(src_port);
            packet->column(4).AppendInt64(dst_port);
            packet->column(5).AppendString(app.proto);
            packet->column(6).AppendString(rng.Bernoulli(0.5) ? "Rx" : "Tx");
            packet->column(7).AppendInt64(
                std::max<int64_t>(40, bytes / std::max<int64_t>(1, packets)));
            packet->CommitRow();
            ++stats.packet_rows;
          }
        }
      }
    }
  }
  stats.data_bytes = db->MemoryBytes();
  stats.summary_bytes = db->BuildSummary().EncodedBytes();
  return stats;
}

double EstimatedUpdateRate(const AnemoneConfig& config) {
  // Average bytes appended per second per endsystem: flows/day * bytes/row.
  const double server_share = config.server_fraction;
  double mean_flows_per_day =
      config.workstation_flows_per_day *
      (1.0 - server_share + server_share * config.server_flow_multiplier);
  // A Flow row is ~60 bytes of raw fields; Packet rows add more when on.
  double bytes_per_day =
      mean_flows_per_day * (60.0 + config.packets_per_flow * 45.0);
  return bytes_per_day / 86400.0;
}

}  // namespace seaweed::anemone
