// Query-lifecycle tracing: span records in fixed-capacity ring buffers.
//
// A span is one step of a query's lifecycle (disseminate, metadata lookup,
// predictor merge, aggregation round, result delivery) with simulated start
// and end timestamps, a parent link, and a small attribute set. Spans are
// grouped into traces by a 64-bit trace key — normally TraceKey(query_id).
//
// The sink appends a record at StartSpan and patches it in place at EndSpan,
// so open spans are visible (end == kOpenSpan) and the ring never needs a
// separate open-span table. When a ring wraps, the oldest spans are
// overwritten; EndSpan/AddAttr on an overwritten span are no-ops. The first
// span started for a trace key becomes the trace's root, and later spans
// started without an explicit parent attach to it — components deep in the
// stack can record lifecycle steps without threading span ids through the
// simulated network.
//
// Parallel lanes (sim/simulator.h): after ConfigureLanes, each lane appends
// to its own ring and span ids embed the lane, so concurrent lanes never
// touch the same record. Only the root map is shared (mutex-protected); root
// identity stays deterministic because a trace's root span is always started
// in an exclusive context (query injection) before any lane records child
// spans for it. Without ConfigureLanes the sink is the classic single-ring
// sink with dense ids.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/node_id.h"
#include "common/time_types.h"

namespace seaweed::obs {

using SpanId = uint64_t;
inline constexpr SpanId kNoSpan = 0;
inline constexpr SimTime kOpenSpan = -1;

// Folds a 128-bit query/node id into the 64-bit key spans are grouped by.
inline uint64_t TraceKey(const NodeId& id) {
  return id.hi() ^ (id.lo() * 0x9e3779b97f4a7c15ULL);
}

struct SpanRecord {
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;  // kNoSpan = root of its trace
  uint64_t trace = 0;
  const char* name = "";  // must be a static-lifetime literal
  SimTime start = 0;
  SimTime end = kOpenSpan;  // kOpenSpan while the span is open
  std::vector<std::pair<const char*, int64_t>> attrs;
  std::vector<std::pair<const char*, std::string>> str_attrs;

  SimDuration Duration() const { return end == kOpenSpan ? 0 : end - start; }
};

class TraceSink {
 public:
  explicit TraceSink(size_t capacity = 1 << 15);

  // Switches to lane mode with rings for the control lane plus `lanes`
  // topology lanes, each of the constructor capacity. Must be called before
  // any span is started.
  void ConfigureLanes(int lanes);

  // Starts a span in trace `trace_key` at simulated time `now`. With
  // parent == kNoSpan the span attaches to the trace's root (or becomes it).
  // Returns kNoSpan when the sink is disabled.
  SpanId StartSpan(const char* name, uint64_t trace_key, SimTime now,
                   SpanId parent = kNoSpan);
  void EndSpan(SpanId id, SimTime now);
  void AddAttr(SpanId id, const char* key, int64_t value);
  void AddAttr(SpanId id, const char* key, std::string value);

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  // Root span of `trace_key`'s trace, or kNoSpan if none started yet.
  SpanId RootOf(uint64_t trace_key) const;

  // Total spans ever started / overwritten by ring wrap-around.
  uint64_t started() const;
  uint64_t dropped() const;
  // Spans currently retained across all rings.
  size_t size() const;
  size_t capacity() const;

  // nullptr if the span was overwritten (or never existed). The pointer is
  // invalidated by the next StartSpan on the same lane.
  const SpanRecord* Find(SpanId id) const;
  // Visits retained spans in deterministic order: start order in the classic
  // single-ring mode, (start time, id) order in lane mode.
  void ForEach(const std::function<void(const SpanRecord&)>& fn) const;

 private:
  // Span ids in lane mode: ((lane + 1) << 48) | per-lane sequence. In the
  // classic mode ids are the dense per-sink sequence (lane tag 0), keeping
  // single-threaded trace output identical to the historical format.
  static constexpr int kLaneShift = 48;
  static constexpr uint64_t kSeqMask = (1ull << kLaneShift) - 1;

  struct LaneRing {
    std::vector<SpanRecord> ring;
    uint64_t started = 0;  // per-lane sequence; ids are 1..started
  };

  SpanRecord* Slot(SpanId id);
  const LaneRing* RingOf(SpanId id) const;

  size_t ring_capacity_;
  bool lane_mode_ = false;
  std::vector<LaneRing> rings_;  // [0] control/exclusive, [1..K] lanes
  mutable std::mutex roots_mu_;
  std::unordered_map<uint64_t, SpanId> roots_;
  bool enabled_ = true;
};

}  // namespace seaweed::obs
