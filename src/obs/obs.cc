#include "obs/obs.h"

namespace seaweed::obs {

Observability* FallbackObservability() {
  static Observability* fallback = new Observability;
  return fallback;
}

}  // namespace seaweed::obs
