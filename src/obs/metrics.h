// Metrics registry: named counters, gauges, log-bucketed histograms, and
// simulated-time timeseries.
//
// Recording goes through pre-resolved handles: a component asks the registry
// for an instrument once (by name, at construction/wiring time) and keeps the
// returned raw pointer. The hot path is then a single add on a cache-resident
// word — no string lookup, no hashing, no allocation. Handles stay valid for
// the registry's lifetime (instruments are heap-held behind the name map).
//
// Thread model (parallel simulator lanes, see sim/simulator.h): recording
// operations are commutative — relaxed atomic adds plus CAS min/max — so
// concurrent lanes produce the same final values regardless of interleaving,
// which keeps multi-thread runs byte-identical to single-thread runs.
// Readers (export, reports) run in exclusive contexts: no lane is executing,
// so plain loads observe the settled values.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/time_types.h"

namespace seaweed::obs {

namespace internal {

inline void AtomicMax(std::atomic<int64_t>& target, int64_t v) {
  int64_t cur = target.load(std::memory_order_relaxed);
  while (v > cur && !target.compare_exchange_weak(cur, v,
                                                  std::memory_order_relaxed)) {
  }
}

inline void AtomicMaxU(std::atomic<uint64_t>& target, uint64_t v) {
  uint64_t cur = target.load(std::memory_order_relaxed);
  while (v > cur && !target.compare_exchange_weak(cur, v,
                                                  std::memory_order_relaxed)) {
  }
}

inline void AtomicMinU(std::atomic<uint64_t>& target, uint64_t v) {
  uint64_t cur = target.load(std::memory_order_relaxed);
  while (v < cur && !target.compare_exchange_weak(cur, v,
                                                  std::memory_order_relaxed)) {
  }
}

}  // namespace internal

// Monotonic event count.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Point-in-time level (queue depths, population counts). Set() is not
// commutative, so levels must be Set from exclusive contexts only; Add() is
// safe from any lane.
class Gauge {
 public:
  void Set(int64_t v) {
    value_.store(v, std::memory_order_relaxed);
    internal::AtomicMax(max_, v);
  }
  void Add(int64_t d) {
    const int64_t v = value_.fetch_add(d, std::memory_order_relaxed) + d;
    internal::AtomicMax(max_, v);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  // Largest value ever Set (initially 0).
  int64_t max() const { return max_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> max_{0};
};

// Log2-bucketed histogram over non-negative integer samples. Bucket i counts
// samples of bit width i: bucket 0 holds v == 0, bucket i holds
// 2^(i-1) <= v < 2^i. Quantiles are therefore approximate (within a factor of
// two), which is enough for latency/row-count distributions at ~zero cost.
class Histogram {
 public:
  static constexpr int kNumBuckets = 65;

  static int BucketOf(uint64_t v) { return std::bit_width(v); }
  // Inclusive upper bound of bucket b's value range.
  static uint64_t BucketUpperBound(int b) {
    return b >= 64 ? ~0ULL : (1ULL << b) - 1;
  }

  void Record(uint64_t v) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    internal::AtomicMinU(min_, v);
    internal::AtomicMaxU(max_, v);
    buckets_[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t min() const {
    return count() ? min_.load(std::memory_order_relaxed) : 0;
  }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double Mean() const {
    const uint64_t c = count();
    return c ? static_cast<double>(sum()) / static_cast<double>(c) : 0;
  }
  // Upper bound of the first bucket whose cumulative count reaches q*count.
  uint64_t ApproxQuantile(double q) const;
  // Snapshot of the bucket counts.
  std::array<uint64_t, kNumBuckets> buckets() const {
    std::array<uint64_t, kNumBuckets> out;
    for (int b = 0; b < kNumBuckets; ++b) {
      out[b] = buckets_[b].load(std::memory_order_relaxed);
    }
    return out;
  }

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{~0ULL};
  std::atomic<uint64_t> max_{0};
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
};

// Accumulates values into fixed-width simulated-time buckets. The default
// width is one hour, matching the paper's per-hour bandwidth accounting;
// bucket i covers [i*width, (i+1)*width). Record takes a spinlock (the
// bucket vector may grow); buckets()/total() must be read from exclusive
// contexts.
class Timeseries {
 public:
  explicit Timeseries(SimDuration bucket_width = kHour)
      : bucket_width_(bucket_width > 0 ? bucket_width : kHour) {}

  void Record(SimTime t, uint64_t v) {
    size_t b = BucketIndex(t);
    while (lock_.test_and_set(std::memory_order_acquire)) {
    }
    if (b >= buckets_.size()) buckets_.resize(b + 1, 0);
    buckets_[b] += v;
    total_ += v;
    lock_.clear(std::memory_order_release);
  }

  size_t BucketIndex(SimTime t) const {
    return t > 0 ? static_cast<size_t>(t / bucket_width_) : 0;
  }

  uint64_t total() const { return total_; }
  SimDuration bucket_width() const { return bucket_width_; }
  // Buckets [0, last-recorded]; trailing empty buckets are not materialized.
  const std::vector<uint64_t>& buckets() const { return buckets_; }
  uint64_t ValueAt(size_t bucket) const {
    return bucket < buckets_.size() ? buckets_[bucket] : 0;
  }

 private:
  SimDuration bucket_width_;
  std::atomic_flag lock_ = ATOMIC_FLAG_INIT;
  std::vector<uint64_t> buckets_;
  uint64_t total_ = 0;
};

// Name -> instrument map. Get* registers on first use and returns the same
// pointer thereafter; names are namespaced by convention ("sim.msgs_sent",
// "bw.tx.pastry", ...). Separate namespaces per instrument kind. Get/Find
// are mutex-protected (lanes may lazily resolve instruments); the snapshot
// views are for exclusive contexts.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);
  // bucket_width applies only on first registration.
  Timeseries* GetTimeseries(const std::string& name,
                            SimDuration bucket_width = kHour);

  // Lookup without registering; nullptr when absent.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;
  const Timeseries* FindTimeseries(const std::string& name) const;

  // Snapshot views, sorted by name (std::map iteration order).
  const std::map<std::string, std::unique_ptr<Counter>>& counters() const {
    return counters_;
  }
  const std::map<std::string, std::unique_ptr<Gauge>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, std::unique_ptr<Histogram>>& histograms() const {
    return histograms_;
  }
  const std::map<std::string, std::unique_ptr<Timeseries>>& timeseries()
      const {
    return timeseries_;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<Timeseries>> timeseries_;
};

}  // namespace seaweed::obs
