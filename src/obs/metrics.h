// Metrics registry: named counters, gauges, log-bucketed histograms, and
// simulated-time timeseries.
//
// Recording goes through pre-resolved handles: a component asks the registry
// for an instrument once (by name, at construction/wiring time) and keeps the
// returned raw pointer. The hot path is then a single add on a cache-resident
// word — no string lookup, no hashing, no allocation. Handles stay valid for
// the registry's lifetime (instruments are heap-held behind the name map).
//
// The simulation core is single-threaded by design, so instruments carry no
// synchronization.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/time_types.h"

namespace seaweed::obs {

// Monotonic event count.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

// Point-in-time level (queue depths, population counts).
class Gauge {
 public:
  void Set(int64_t v) {
    value_ = v;
    if (v > max_) max_ = v;
  }
  void Add(int64_t d) { Set(value_ + d); }
  int64_t value() const { return value_; }
  // Largest value ever Set (initially 0).
  int64_t max() const { return max_; }

 private:
  int64_t value_ = 0;
  int64_t max_ = 0;
};

// Log2-bucketed histogram over non-negative integer samples. Bucket i counts
// samples of bit width i: bucket 0 holds v == 0, bucket i holds
// 2^(i-1) <= v < 2^i. Quantiles are therefore approximate (within a factor of
// two), which is enough for latency/row-count distributions at ~zero cost.
class Histogram {
 public:
  static constexpr int kNumBuckets = 65;

  static int BucketOf(uint64_t v) { return std::bit_width(v); }
  // Inclusive upper bound of bucket b's value range.
  static uint64_t BucketUpperBound(int b) {
    return b >= 64 ? ~0ULL : (1ULL << b) - 1;
  }

  void Record(uint64_t v) {
    ++count_;
    sum_ += v;
    if (v < min_ || count_ == 1) min_ = v;
    if (v > max_) max_ = v;
    ++buckets_[BucketOf(v)];
  }

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ ? min_ : 0; }
  uint64_t max() const { return max_; }
  double Mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0;
  }
  // Upper bound of the first bucket whose cumulative count reaches q*count.
  uint64_t ApproxQuantile(double q) const;
  const std::array<uint64_t, kNumBuckets>& buckets() const { return buckets_; }

 private:
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
  std::array<uint64_t, kNumBuckets> buckets_{};
};

// Accumulates values into fixed-width simulated-time buckets. The default
// width is one hour, matching the paper's per-hour bandwidth accounting;
// bucket i covers [i*width, (i+1)*width).
class Timeseries {
 public:
  explicit Timeseries(SimDuration bucket_width = kHour)
      : bucket_width_(bucket_width > 0 ? bucket_width : kHour) {}

  void Record(SimTime t, uint64_t v) {
    size_t b = BucketIndex(t);
    if (b >= buckets_.size()) buckets_.resize(b + 1, 0);
    buckets_[b] += v;
    total_ += v;
  }

  size_t BucketIndex(SimTime t) const {
    return t > 0 ? static_cast<size_t>(t / bucket_width_) : 0;
  }

  uint64_t total() const { return total_; }
  SimDuration bucket_width() const { return bucket_width_; }
  // Buckets [0, last-recorded]; trailing empty buckets are not materialized.
  const std::vector<uint64_t>& buckets() const { return buckets_; }
  uint64_t ValueAt(size_t bucket) const {
    return bucket < buckets_.size() ? buckets_[bucket] : 0;
  }

 private:
  SimDuration bucket_width_;
  std::vector<uint64_t> buckets_;
  uint64_t total_ = 0;
};

// Name -> instrument map. Get* registers on first use and returns the same
// pointer thereafter; names are namespaced by convention ("sim.msgs_sent",
// "bw.tx.pastry", ...). Separate namespaces per instrument kind.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);
  // bucket_width applies only on first registration.
  Timeseries* GetTimeseries(const std::string& name,
                            SimDuration bucket_width = kHour);

  // Lookup without registering; nullptr when absent.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;
  const Timeseries* FindTimeseries(const std::string& name) const;

  // Snapshot views, sorted by name (std::map iteration order).
  const std::map<std::string, std::unique_ptr<Counter>>& counters() const {
    return counters_;
  }
  const std::map<std::string, std::unique_ptr<Gauge>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, std::unique_ptr<Histogram>>& histograms() const {
    return histograms_;
  }
  const std::map<std::string, std::unique_ptr<Timeseries>>& timeseries()
      const {
    return timeseries_;
  }

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<Timeseries>> timeseries_;
};

}  // namespace seaweed::obs
