#include "obs/jsonl_reader.h"

#include <cstdlib>

namespace seaweed::obs {

const Json* Json::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : fields) {
    if (k == key) return &v;
  }
  return nullptr;
}

int64_t Json::AsInt(int64_t def) const {
  return kind == Kind::kNumber ? static_cast<int64_t>(num) : def;
}
uint64_t Json::AsUint(uint64_t def) const {
  return kind == Kind::kNumber && num >= 0 ? static_cast<uint64_t>(num) : def;
}
double Json::AsDouble(double def) const {
  return kind == Kind::kNumber ? num : def;
}
const std::string& Json::AsString() const {
  static const std::string kEmpty;
  return kind == Kind::kString ? str : kEmpty;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> Parse() {
    SkipWs();
    Json v;
    Status s = ParseValue(&v);
    if (!s.ok()) return s;
    SkipWs();
    if (pos_ != text_.size()) return Error("trailing characters");
    return v;
  }

 private:
  Status Error(const std::string& what) {
    return Status::ParseError("json: " + what + " at offset " +
                              std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view w) {
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  Status ParseValue(Json* out) {
    if (pos_ >= text_.size()) return Error("unexpected end");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = Json::Kind::kString;
        return ParseString(&out->str);
      case 't':
        if (!ConsumeWord("true")) return Error("bad literal");
        out->kind = Json::Kind::kBool;
        out->b = true;
        return Status::OK();
      case 'f':
        if (!ConsumeWord("false")) return Error("bad literal");
        out->kind = Json::Kind::kBool;
        out->b = false;
        return Status::OK();
      case 'n':
        if (!ConsumeWord("null")) return Error("bad literal");
        out->kind = Json::Kind::kNull;
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(Json* out) {
    ++pos_;  // '{'
    out->kind = Json::Kind::kObject;
    SkipWs();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWs();
      std::string key;
      Status s = ParseString(&key);
      if (!s.ok()) return s;
      SkipWs();
      if (!Consume(':')) return Error("expected ':'");
      SkipWs();
      Json value;
      s = ParseValue(&value);
      if (!s.ok()) return s;
      out->fields.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(Json* out) {
    ++pos_;  // '['
    out->kind = Json::Kind::kArray;
    SkipWs();
    if (Consume(']')) return Status::OK();
    while (true) {
      SkipWs();
      Json value;
      Status s = ParseValue(&value);
      if (!s.ok()) return s;
      out->items.push_back(std::move(value));
      SkipWs();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) return Error("bad escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          *out += e;
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("bad \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported —
          // export.cc only emits \u for control characters).
          if (cp < 0x80) {
            *out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            *out += static_cast<char>(0xC0 | (cp >> 6));
            *out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (cp >> 12));
            *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default:
          return Error("bad escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(Json* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Error("expected value");
    std::string num(text_.substr(start, pos_ - start));
    char* endp = nullptr;
    double v = std::strtod(num.c_str(), &endp);
    if (endp == nullptr || *endp != '\0') return Error("bad number");
    out->kind = Json::Kind::kNumber;
    out->num = v;
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> ParseJson(std::string_view text) { return Parser(text).Parse(); }

Result<std::vector<Json>> ParseJsonLines(std::istream& in) {
  std::vector<Json> out;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    Result<Json> parsed = ParseJson(line);
    if (!parsed.ok()) {
      return Status::ParseError("line " + std::to_string(lineno) + ": " +
                                parsed.status().message());
    }
    out.push_back(std::move(parsed).value());
  }
  return out;
}

}  // namespace seaweed::obs
