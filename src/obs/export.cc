#include "obs/export.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>

namespace seaweed::obs {

void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

namespace {

void AppendQuoted(std::string* out, std::string_view s) {
  *out += '"';
  AppendJsonEscaped(out, s);
  *out += '"';
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

void AppendI64(std::string* out, int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  *out += buf;
}

}  // namespace

void WriteMetricsJsonl(const MetricsRegistry& registry, std::ostream& os) {
  std::string line;
  for (const auto& [name, c] : registry.counters()) {
    line = "{\"kind\":\"counter\",\"name\":";
    AppendQuoted(&line, name);
    line += ",\"value\":";
    AppendU64(&line, c->value());
    line += "}\n";
    os << line;
  }
  for (const auto& [name, g] : registry.gauges()) {
    line = "{\"kind\":\"gauge\",\"name\":";
    AppendQuoted(&line, name);
    line += ",\"value\":";
    AppendI64(&line, g->value());
    line += ",\"max\":";
    AppendI64(&line, g->max());
    line += "}\n";
    os << line;
  }
  for (const auto& [name, h] : registry.histograms()) {
    line = "{\"kind\":\"histogram\",\"name\":";
    AppendQuoted(&line, name);
    line += ",\"count\":";
    AppendU64(&line, h->count());
    line += ",\"sum\":";
    AppendU64(&line, h->sum());
    line += ",\"min\":";
    AppendU64(&line, h->min());
    line += ",\"max\":";
    AppendU64(&line, h->max());
    line += ",\"buckets\":[";
    bool first = true;
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      if (h->buckets()[b] == 0) continue;
      if (!first) line += ',';
      first = false;
      line += '[';
      AppendI64(&line, b);
      line += ',';
      AppendU64(&line, h->buckets()[b]);
      line += ']';
    }
    line += "]}\n";
    os << line;
  }
  for (const auto& [name, ts] : registry.timeseries()) {
    line = "{\"kind\":\"timeseries\",\"name\":";
    AppendQuoted(&line, name);
    line += ",\"bucket_us\":";
    AppendI64(&line, ts->bucket_width());
    line += ",\"total\":";
    AppendU64(&line, ts->total());
    line += ",\"buckets\":[";
    for (size_t i = 0; i < ts->buckets().size(); ++i) {
      if (i) line += ',';
      AppendU64(&line, ts->buckets()[i]);
    }
    line += "]}\n";
    os << line;
  }
}

void WriteTraceJsonl(const TraceSink& sink, std::ostream& os) {
  std::string line;
  sink.ForEach([&](const SpanRecord& span) {
    line = "{\"kind\":\"span\",\"id\":";
    AppendU64(&line, span.id);
    line += ",\"parent\":";
    AppendU64(&line, span.parent);
    line += ",\"trace\":";
    char hex[20];
    std::snprintf(hex, sizeof(hex), "\"%016" PRIx64 "\"", span.trace);
    line += hex;
    line += ",\"name\":";
    AppendQuoted(&line, span.name);
    line += ",\"start\":";
    AppendI64(&line, span.start);
    line += ",\"end\":";
    if (span.end == kOpenSpan) {
      line += "null";
    } else {
      AppendI64(&line, span.end);
    }
    if (!span.attrs.empty() || !span.str_attrs.empty()) {
      line += ",\"attrs\":{";
      bool first = true;
      for (const auto& [k, v] : span.attrs) {
        if (!first) line += ',';
        first = false;
        AppendQuoted(&line, k);
        line += ':';
        AppendI64(&line, v);
      }
      for (const auto& [k, v] : span.str_attrs) {
        if (!first) line += ',';
        first = false;
        AppendQuoted(&line, k);
        line += ':';
        AppendQuoted(&line, v);
      }
      line += '}';
    }
    line += "}\n";
    os << line;
  });
}

Status DumpToFile(const MetricsRegistry* registry, const TraceSink* sink,
                  const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path);
  if (registry != nullptr) WriteMetricsJsonl(*registry, out);
  if (sink != nullptr) WriteTraceJsonl(*sink, out);
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace seaweed::obs
