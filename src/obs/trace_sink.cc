#include "obs/trace_sink.h"

#include <algorithm>

#include "common/lane.h"
#include "common/logging.h"

namespace seaweed::obs {

TraceSink::TraceSink(size_t capacity)
    : ring_capacity_(capacity > 0 ? capacity : 1) {
  rings_.resize(1);
  rings_[0].ring.resize(ring_capacity_);
}

void TraceSink::ConfigureLanes(int lanes) {
  SEAWEED_CHECK_MSG(lanes >= 1, "TraceSink::ConfigureLanes: lanes >= 1");
  SEAWEED_CHECK_MSG(started() == 0,
                    "TraceSink::ConfigureLanes must precede all spans");
  lane_mode_ = true;
  rings_.clear();
  rings_.resize(static_cast<size_t>(lanes) + 1);
  for (LaneRing& r : rings_) r.ring.resize(ring_capacity_);
}

SpanId TraceSink::StartSpan(const char* name, uint64_t trace_key, SimTime now,
                            SpanId parent) {
  if (!enabled_) return kNoSpan;
  size_t lane = 0;
  if (lane_mode_) {
    const int cur = CurrentExecLane();
    lane = cur > 0 ? static_cast<size_t>(cur) : 0;
  }
  LaneRing& r = rings_[lane];
  const uint64_t seq = ++r.started;
  const SpanId id =
      lane_mode_ ? ((static_cast<uint64_t>(lane) + 1) << kLaneShift) | seq
                 : seq;
  if (parent == kNoSpan) {
    std::lock_guard<std::mutex> lock(roots_mu_);
    auto [it, inserted] = roots_.emplace(trace_key, id);
    if (!inserted) parent = it->second;
  }
  SpanRecord& rec = r.ring[(seq - 1) % r.ring.size()];
  rec.id = id;
  rec.parent = parent;
  rec.trace = trace_key;
  rec.name = name;
  rec.start = now;
  rec.end = kOpenSpan;
  rec.attrs.clear();
  rec.str_attrs.clear();
  return id;
}

const TraceSink::LaneRing* TraceSink::RingOf(SpanId id) const {
  if (id == kNoSpan) return nullptr;
  if (!lane_mode_) return &rings_[0];
  const uint64_t tag = id >> kLaneShift;
  if (tag == 0 || tag > rings_.size()) return nullptr;
  return &rings_[tag - 1];
}

SpanRecord* TraceSink::Slot(SpanId id) {
  const LaneRing* r = RingOf(id);
  if (r == nullptr) return nullptr;
  const uint64_t seq = lane_mode_ ? (id & kSeqMask) : id;
  if (seq == 0 || seq > r->started) return nullptr;
  SpanRecord& rec =
      const_cast<LaneRing*>(r)->ring[(seq - 1) % r->ring.size()];
  return rec.id == id ? &rec : nullptr;  // id mismatch: overwritten
}

void TraceSink::EndSpan(SpanId id, SimTime now) {
  if (SpanRecord* rec = Slot(id)) rec->end = now;
}

void TraceSink::AddAttr(SpanId id, const char* key, int64_t value) {
  if (SpanRecord* rec = Slot(id)) rec->attrs.emplace_back(key, value);
}

void TraceSink::AddAttr(SpanId id, const char* key, std::string value) {
  if (SpanRecord* rec = Slot(id)) {
    rec->str_attrs.emplace_back(key, std::move(value));
  }
}

SpanId TraceSink::RootOf(uint64_t trace_key) const {
  std::lock_guard<std::mutex> lock(roots_mu_);
  auto it = roots_.find(trace_key);
  return it == roots_.end() ? kNoSpan : it->second;
}

uint64_t TraceSink::started() const {
  uint64_t total = 0;
  for (const LaneRing& r : rings_) total += r.started;
  return total;
}

uint64_t TraceSink::dropped() const {
  uint64_t total = 0;
  for (const LaneRing& r : rings_) {
    if (r.started > r.ring.size()) total += r.started - r.ring.size();
  }
  return total;
}

size_t TraceSink::size() const {
  size_t total = 0;
  for (const LaneRing& r : rings_) {
    total += r.started < r.ring.size() ? static_cast<size_t>(r.started)
                                       : r.ring.size();
  }
  return total;
}

size_t TraceSink::capacity() const {
  return ring_capacity_ * rings_.size();
}

const SpanRecord* TraceSink::Find(SpanId id) const {
  return const_cast<TraceSink*>(this)->Slot(id);
}

void TraceSink::ForEach(
    const std::function<void(const SpanRecord&)>& fn) const {
  if (!lane_mode_) {
    const LaneRing& r = rings_[0];
    SpanId first = r.started > r.ring.size() ? r.started - r.ring.size() + 1
                                             : 1;
    for (SpanId id = first; id <= r.started; ++id) {
      if (const SpanRecord* rec = Find(id)) fn(*rec);
    }
    return;
  }
  // Lane mode: merge all rings in (start, id) order. Ids embed (lane, seq),
  // both deterministic, so the merged order is thread-count independent.
  std::vector<const SpanRecord*> all;
  all.reserve(size());
  for (size_t lane = 0; lane < rings_.size(); ++lane) {
    const LaneRing& r = rings_[lane];
    const uint64_t first =
        r.started > r.ring.size() ? r.started - r.ring.size() + 1 : 1;
    for (uint64_t seq = first; seq <= r.started; ++seq) {
      const SpanId id = ((static_cast<uint64_t>(lane) + 1) << kLaneShift) | seq;
      if (const SpanRecord* rec = Find(id)) all.push_back(rec);
    }
  }
  std::sort(all.begin(), all.end(),
            [](const SpanRecord* a, const SpanRecord* b) {
              if (a->start != b->start) return a->start < b->start;
              return a->id < b->id;
            });
  for (const SpanRecord* rec : all) fn(*rec);
}

}  // namespace seaweed::obs
