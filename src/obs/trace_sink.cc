#include "obs/trace_sink.h"

namespace seaweed::obs {

TraceSink::TraceSink(size_t capacity) : ring_(capacity > 0 ? capacity : 1) {}

SpanId TraceSink::StartSpan(const char* name, uint64_t trace_key, SimTime now,
                            SpanId parent) {
  if (!enabled_) return kNoSpan;
  SpanId id = ++started_;
  if (parent == kNoSpan) {
    auto [it, inserted] = roots_.emplace(trace_key, id);
    if (!inserted) parent = it->second;
  }
  SpanRecord& rec = ring_[(id - 1) % ring_.size()];
  rec.id = id;
  rec.parent = parent;
  rec.trace = trace_key;
  rec.name = name;
  rec.start = now;
  rec.end = kOpenSpan;
  rec.attrs.clear();
  rec.str_attrs.clear();
  return id;
}

SpanRecord* TraceSink::Slot(SpanId id) {
  if (id == kNoSpan || id > started_) return nullptr;
  SpanRecord& rec = ring_[(id - 1) % ring_.size()];
  return rec.id == id ? &rec : nullptr;  // id mismatch: overwritten
}

void TraceSink::EndSpan(SpanId id, SimTime now) {
  if (SpanRecord* rec = Slot(id)) rec->end = now;
}

void TraceSink::AddAttr(SpanId id, const char* key, int64_t value) {
  if (SpanRecord* rec = Slot(id)) rec->attrs.emplace_back(key, value);
}

void TraceSink::AddAttr(SpanId id, const char* key, std::string value) {
  if (SpanRecord* rec = Slot(id)) {
    rec->str_attrs.emplace_back(key, std::move(value));
  }
}

SpanId TraceSink::RootOf(uint64_t trace_key) const {
  auto it = roots_.find(trace_key);
  return it == roots_.end() ? kNoSpan : it->second;
}

const SpanRecord* TraceSink::Find(SpanId id) const {
  return const_cast<TraceSink*>(this)->Slot(id);
}

void TraceSink::ForEach(
    const std::function<void(const SpanRecord&)>& fn) const {
  SpanId first = started_ > ring_.size() ? started_ - ring_.size() + 1 : 1;
  for (SpanId id = first; id <= started_; ++id) {
    if (const SpanRecord* rec = Find(id)) fn(*rec);
  }
}

}  // namespace seaweed::obs
