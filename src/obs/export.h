// JSONL export of metrics snapshots and trace spans.
//
// One JSON object per line; the "kind" field discriminates:
//   {"kind":"counter","name":...,"value":N}
//   {"kind":"gauge","name":...,"value":N,"max":N}
//   {"kind":"histogram","name":...,"count":N,"sum":N,"min":N,"max":N,
//    "buckets":[[bit_width,count],...]}            (sparse: empty omitted)
//   {"kind":"timeseries","name":...,"bucket_us":N,"total":N,"buckets":[...]}
//   {"kind":"span","id":N,"parent":N,"trace":"<16 hex>","name":...,
//    "start":N,"end":N|null,"attrs":{...}}
//
// Trace keys are emitted as hex strings because uint64 values do not survive
// a double-typed JSON number; simulated timestamps (µs) comfortably fit.
#pragma once

#include <ostream>
#include <string>
#include <string_view>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"

namespace seaweed::obs {

// Appends `s` with JSON string escaping (no surrounding quotes).
void AppendJsonEscaped(std::string* out, std::string_view s);

void WriteMetricsJsonl(const MetricsRegistry& registry, std::ostream& os);
void WriteTraceJsonl(const TraceSink& sink, std::ostream& os);

// Writes metrics then spans to `path`; either source may be null.
Status DumpToFile(const MetricsRegistry* registry, const TraceSink* sink,
                  const std::string& path);

}  // namespace seaweed::obs
