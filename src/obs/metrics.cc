#include "obs/metrics.h"

#include <cmath>

namespace seaweed::obs {

uint64_t Histogram::ApproxQuantile(double q) const {
  const uint64_t n = count();
  if (n == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Nearest-rank: the smallest bucket whose cumulative count covers
  // ceil(q * count) samples, so e.g. p99 of 5 samples is the 5th.
  uint64_t target = static_cast<uint64_t>(std::ceil(q * static_cast<double>(n)));
  if (target == 0) target = 1;
  const uint64_t hi = max();
  uint64_t cum = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    cum += buckets_[b].load(std::memory_order_relaxed);
    if (cum >= target) {
      uint64_t ub = BucketUpperBound(b);
      return ub < hi ? ub : hi;
    }
  }
  return hi;
}

namespace {
template <typename T, typename... Args>
T* GetOrCreate(std::map<std::string, std::unique_ptr<T>>* m,
               const std::string& name, Args&&... args) {
  auto it = m->find(name);
  if (it == m->end()) {
    it = m->emplace(name, std::make_unique<T>(std::forward<Args>(args)...))
             .first;
  }
  return it->second.get();
}

template <typename T>
const T* FindIn(const std::map<std::string, std::unique_ptr<T>>& m,
                const std::string& name) {
  auto it = m.find(name);
  return it == m.end() ? nullptr : it->second.get();
}
}  // namespace

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetOrCreate(&counters_, name);
}
Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetOrCreate(&gauges_, name);
}
Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetOrCreate(&histograms_, name);
}
Timeseries* MetricsRegistry::GetTimeseries(const std::string& name,
                                           SimDuration bucket_width) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetOrCreate(&timeseries_, name, bucket_width);
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return FindIn(counters_, name);
}
const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return FindIn(gauges_, name);
}
const Histogram* MetricsRegistry::FindHistogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return FindIn(histograms_, name);
}
const Timeseries* MetricsRegistry::FindTimeseries(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return FindIn(timeseries_, name);
}

}  // namespace seaweed::obs
