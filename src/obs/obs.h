// Observability domain: the metrics registry and trace sink one simulation
// records into and exports from together. SeaweedCluster owns one; layers
// below reach it through their wiring (Network carries the pointer for the
// sim/overlay/seaweed stack).
#pragma once

#include "obs/metrics.h"
#include "obs/trace_sink.h"

namespace seaweed::obs {

struct Observability {
  MetricsRegistry metrics;
  TraceSink trace;
};

// Process-wide scratch domain for components constructed without explicit
// wiring (unit tests building a single layer). Recording into it is valid
// and cheap; nothing reads it back. Keeps pre-resolved handles never-null so
// hot paths stay branch-free.
Observability* FallbackObservability();

}  // namespace seaweed::obs
