// Minimal JSON / JSONL reader for obs dumps.
//
// Just enough JSON to round-trip what export.cc writes (objects, arrays,
// strings with the common escapes, int/double numbers, true/false/null);
// not a general-purpose parser. Used by tools/obs_report and tests.
#pragma once

#include <cstdint>
#include <istream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace seaweed::obs {

struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<Json> items;                        // kArray
  std::vector<std::pair<std::string, Json>> fields;  // kObject

  bool is_null() const { return kind == Kind::kNull; }

  // Object field lookup; nullptr when absent or not an object.
  const Json* Find(std::string_view key) const;

  // Typed accessors with defaults (also applied on kind mismatch).
  int64_t AsInt(int64_t def = 0) const;
  uint64_t AsUint(uint64_t def = 0) const;
  double AsDouble(double def = 0) const;
  const std::string& AsString() const;  // empty string on mismatch
};

Result<Json> ParseJson(std::string_view text);

// Parses one JSON value per non-empty line; stops at the first bad line.
Result<std::vector<Json>> ParseJsonLines(std::istream& in);

}  // namespace seaweed::obs
