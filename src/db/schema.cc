#include "db/schema.h"

#include <cctype>

namespace seaweed::db {

bool EqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

int Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

Result<int> Schema::RequireColumn(const std::string& name) const {
  int idx = FindColumn(name);
  if (idx < 0) {
    return Status::NotFound("no such column: " + name);
  }
  return idx;
}

}  // namespace seaweed::db
