// Histogram-based row-count estimation (§3.2.2, §4.3.2).
//
// When an endsystem is unavailable, a member of its replica set estimates
// how many of its rows match a query, using only the replicated column
// summaries. Conjunctions multiply selectivities (attribute-value
// independence, the standard DBMS assumption); predicates on columns with no
// summary fall back to System-R style magic constants.
#pragma once

#include <vector>

#include "common/result.h"
#include "db/ast.h"
#include "db/histogram.h"

namespace seaweed::db {

// Magic selectivities for unsummarized columns (System R defaults).
inline constexpr double kDefaultEqSelectivity = 0.1;
inline constexpr double kDefaultRangeSelectivity = 1.0 / 3.0;

class RowCountEstimator {
 public:
  // `summaries` are histograms over (a subset of) one table's columns;
  // `total_rows` is that table's row count at summary time.
  RowCountEstimator(const std::vector<ColumnSummary>* summaries,
                    int64_t total_rows)
      : summaries_(summaries), total_rows_(total_rows) {}

  // Estimated number of rows matching the predicate.
  double EstimateRows(const PredicatePtr& predicate) const;

  // Selectivity in [0, 1].
  double EstimateSelectivity(const PredicatePtr& predicate) const;

 private:
  const ColumnSummary* FindSummary(const std::string& column) const;
  double CompareSelectivity(const Predicate& p) const;
  double SelectivityOf(const Predicate* p) const;
  double ConjunctionSelectivity(
      const std::vector<const Predicate*>& conjuncts) const;

  const std::vector<ColumnSummary>* summaries_;
  int64_t total_rows_;
};

}  // namespace seaweed::db
