// Mergeable sketch states for approximate aggregate functions.
//
// A SketchState is the function-specific part of an AggState: exact
// functions (SUM/COUNT/AVG/MIN/MAX) carry none, approximate functions
// attach one at init time. Sketches must be:
//  * mergeable — Merge() folds another instance of the same type in; the
//    aggregation tree merges children in sorted-key order, so results are
//    deterministic given the tree shape (but, unlike the exact quad, not
//    necessarily identical across different shapes);
//  * losslessly encodable — Decode(Encode(s)) reproduces s byte-for-byte,
//    because the serializing-transport and loopback differentials compare
//    runs with and without the wire codec in flight.
//
// Three implementations ship with the registry (tags must stay stable,
// they are the wire format):
//  * HllSketch (tag 1) — HyperLogLog distinct counting, p=12 (4096
//    registers, ~1.6% standard error). Register-max merge is fully
//    order-independent.
//  * QuantileSketch (tag 2) — weighted compacting buffer of (value,
//    weight) centroids, capped at kMaxCentroids after compaction.
//    Deterministic given merge order; observed rank error well under 1%
//    for 10^6-row inputs (see tests/sketch_test.cc).
//  * TopKSketch (tag 3) — Misra-Gries heavy hitters over Value keys.
//    Counts under-estimate true frequency by at most N/capacity.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/serialize.h"
#include "db/value.h"

namespace seaweed::db {

// Wire tags for AggState payloads. Tag 0 means "exact quad only" and is
// shared by every exact function; nonzero tags name a sketch payload.
inline constexpr uint8_t kStateTagExact = 0;
inline constexpr uint8_t kStateTagHll = 1;
inline constexpr uint8_t kStateTagQuantile = 2;
inline constexpr uint8_t kStateTagTopK = 3;

class SketchState {
 public:
  virtual ~SketchState() = default;

  virtual uint8_t tag() const = 0;
  // Per-row updates. The executor routes numeric columns through Update
  // (same double the exact quad sees) and string columns through
  // UpdateString; functions that disallow strings never see the latter.
  virtual void Update(double v) = 0;
  virtual void UpdateString(const std::string& s) = 0;
  // Folds `other` in; callers guarantee the same concrete type (states of
  // one select item always come from the same registered function).
  virtual void Merge(const SketchState& other) = 0;
  virtual std::unique_ptr<SketchState> Clone() const = 0;
  // Payload only (no tag byte — AggState writes that); starts with a
  // version byte so payloads can evolve.
  virtual void Encode(Writer& w) const = 0;
  virtual bool Equals(const SketchState& other) const = 0;
  size_t EncodedBytes() const;
};

// HyperLogLog with 2^12 registers and a 64-bit hash (splitmix64 finalizer
// over the IEEE bits for numerics, FNV-1a for strings).
class HllSketch final : public SketchState {
 public:
  static constexpr int kPrecision = 12;
  static constexpr size_t kRegisters = size_t{1} << kPrecision;

  HllSketch() : regs_(kRegisters, 0) {}

  uint8_t tag() const override { return kStateTagHll; }
  void Update(double v) override;
  void UpdateString(const std::string& s) override;
  void Merge(const SketchState& other) override;
  std::unique_ptr<SketchState> Clone() const override;
  void Encode(Writer& w) const override;
  bool Equals(const SketchState& other) const override;
  static Result<std::unique_ptr<SketchState>> Decode(Reader& r);

  // Distinct-count estimate with the standard small-range (linear
  // counting) correction.
  double Estimate() const;

 private:
  void AddHash(uint64_t h);
  std::vector<uint8_t> regs_;
};

// Mergeable quantile summary: a buffer of (value, weight) pairs. Inserts
// append weight-1 points; when the buffer exceeds 2*kMaxCentroids it is
// sorted and compacted to kMaxCentroids equal-weight groups, each replaced
// by its weighted mean. Merge concatenates and compacts the same way, so
// the state is a deterministic function of the insert/merge sequence.
class QuantileSketch final : public SketchState {
 public:
  static constexpr size_t kMaxCentroids = 1024;

  uint8_t tag() const override { return kStateTagQuantile; }
  void Update(double v) override;
  void UpdateString(const std::string& s) override;  // CHECK-fails
  void Merge(const SketchState& other) override;
  std::unique_ptr<SketchState> Clone() const override;
  void Encode(Writer& w) const override;
  bool Equals(const SketchState& other) const override;
  static Result<std::unique_ptr<SketchState>> Decode(Reader& r);

  // Value at quantile q in [0, 1]: the first centroid whose cumulative
  // weight reaches q * total_weight.
  double Query(double q) const;
  double total_weight() const;

 private:
  void CompactIfNeeded();
  // Sorted-by-value (value, weight) centroids plus an unsorted tail of
  // recent inserts; Query() sorts a scratch copy.
  std::vector<std::pair<double, double>> pts_;
};

// Misra-Gries heavy hitters keyed by Value (numeric columns arrive as the
// same double the exact quad sees; string columns as dictionary entries).
// Capacity is fixed at init from the query's k and travels in the payload
// so decode is self-contained.
class TopKSketch final : public SketchState {
 public:
  explicit TopKSketch(size_t capacity) : capacity_(capacity) {}
  static size_t CapacityFor(int64_t k);

  uint8_t tag() const override { return kStateTagTopK; }
  void Update(double v) override;
  void UpdateString(const std::string& s) override;
  void Merge(const SketchState& other) override;
  std::unique_ptr<SketchState> Clone() const override;
  void Encode(Writer& w) const override;
  bool Equals(const SketchState& other) const override;
  static Result<std::unique_ptr<SketchState>> Decode(Reader& r);

  // Top `k` surviving entries ordered by (count desc, key asc). Counts
  // under-estimate true frequency by at most N/capacity.
  std::vector<std::pair<Value, int64_t>> Top(size_t k) const;
  size_t capacity() const { return capacity_; }

 private:
  void Add(const Value& key, int64_t weight);
  void TrimToCapacity();
  size_t capacity_;
  // Sorted by key (Value::operator<): deterministic encode order and
  // O(log n) update via lower_bound.
  std::vector<std::pair<Value, int64_t>> counts_;
};

// Decodes one sketch payload by wire tag (the dispatch the registry and
// AggState::Decode use). Unknown tags are a ParseError, not a crash:
// malformed messages must be survivable.
Result<std::unique_ptr<SketchState>> DecodeSketchState(uint8_t tag,
                                                       Reader& r);

}  // namespace seaweed::db
