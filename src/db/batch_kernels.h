// Vectorized batch kernels for local query execution.
//
// The executor processes tables in fixed-size batches of rows. A predicate
// evaluates to a *selection vector* per batch — a sorted array of matching
// absolute row ids — instead of a per-row boolean from a recursive tree
// walk. Compare kernels are flat, type-specialized loops with a branch-free
// append (the store happens unconditionally; only the cursor advance is
// predicated), AND composes by re-filtering the left side's selection, OR
// merges two sorted selections, and aggregation runs fused loops over the
// final selection with no Value boxing.
//
// All kernels preserve row order (selection vectors stay sorted ascending),
// so floating-point accumulation happens in exactly the same order as the
// scalar row-at-a-time path and results are bit-identical to it.
#pragma once

#include <cstdint>

#include "db/ast.h"

namespace seaweed::db {

// Rows per batch. Large enough to amortize per-batch dispatch, small enough
// that a selection vector (4 KiB) stays cache- and stack-friendly.
inline constexpr uint32_t kBatchSize = 1024;

// Sorted matching row ids (absolute) within one batch.
struct SelVector {
  uint32_t rows[kBatchSize];
  uint32_t count = 0;

  void Clear() { count = 0; }
};

// Fills `out` with the identity selection [start, start + len).
void SelAll(uint32_t start, uint32_t len, SelVector* out);

// Merges two sorted selections (subsets of the same batch) into their
// sorted union.
void SelUnion(const SelVector& a, const SelVector& b, SelVector* out);

// Comparison functors matching the scalar path's three-way semantics
// (cmp3 = (v < lit) ? -1 : (v > lit ? 1 : 0), then EvalCompare(op, cmp3)).
// Expressing each op through </> keeps NaN behavior identical to the
// scalar engine for double columns.
struct CmpEq {
  template <typename T>
  bool operator()(T v, T lit) const { return !(v < lit) && !(v > lit); }
};
struct CmpNe {
  template <typename T>
  bool operator()(T v, T lit) const { return (v < lit) || (v > lit); }
};
struct CmpLt {
  template <typename T>
  bool operator()(T v, T lit) const { return v < lit; }
};
struct CmpLe {
  template <typename T>
  bool operator()(T v, T lit) const { return !(v > lit); }
};
struct CmpGt {
  template <typename T>
  bool operator()(T v, T lit) const { return v > lit; }
};
struct CmpGe {
  template <typename T>
  bool operator()(T v, T lit) const { return !(v < lit); }
};

// Dense filter: scans rows [start, start + len) of `col` and appends
// matching row ids to `out`. `Lit` is the comparison domain: the column
// value is converted to it first (int64 column vs double literal compares
// as double, exactly like the scalar path).
template <typename T, typename Lit, typename Cmp>
inline void FilterDense(const T* col, uint32_t start, uint32_t len, Lit lit,
                        Cmp cmp, SelVector* out) {
  uint32_t n = out->count;
  for (uint32_t i = 0; i < len; ++i) {
    const uint32_t row = start + i;
    out->rows[n] = row;
    n += cmp(static_cast<Lit>(col[row]), lit) ? 1u : 0u;
  }
  out->count = n;
}

// Selective filter: refines an input selection, appending the surviving
// row ids to `out`.
template <typename T, typename Lit, typename Cmp>
inline void FilterSel(const T* col, const SelVector& in, Lit lit, Cmp cmp,
                      SelVector* out) {
  uint32_t n = out->count;
  for (uint32_t i = 0; i < in.count; ++i) {
    const uint32_t row = in.rows[i];
    out->rows[n] = row;
    n += cmp(static_cast<Lit>(col[row]), lit) ? 1u : 0u;
  }
  out->count = n;
}

// Runtime-op dispatch over the comparison functors.
template <typename T, typename Lit>
inline void FilterDenseOp(const T* col, uint32_t start, uint32_t len, Lit lit,
                          CompareOp op, SelVector* out) {
  switch (op) {
    case CompareOp::kEq: FilterDense(col, start, len, lit, CmpEq{}, out); break;
    case CompareOp::kNe: FilterDense(col, start, len, lit, CmpNe{}, out); break;
    case CompareOp::kLt: FilterDense(col, start, len, lit, CmpLt{}, out); break;
    case CompareOp::kLe: FilterDense(col, start, len, lit, CmpLe{}, out); break;
    case CompareOp::kGt: FilterDense(col, start, len, lit, CmpGt{}, out); break;
    case CompareOp::kGe: FilterDense(col, start, len, lit, CmpGe{}, out); break;
  }
}

template <typename T, typename Lit>
inline void FilterSelOp(const T* col, const SelVector& in, Lit lit,
                        CompareOp op, SelVector* out) {
  switch (op) {
    case CompareOp::kEq: FilterSel(col, in, lit, CmpEq{}, out); break;
    case CompareOp::kNe: FilterSel(col, in, lit, CmpNe{}, out); break;
    case CompareOp::kLt: FilterSel(col, in, lit, CmpLt{}, out); break;
    case CompareOp::kLe: FilterSel(col, in, lit, CmpLe{}, out); break;
    case CompareOp::kGt: FilterSel(col, in, lit, CmpGt{}, out); break;
    case CompareOp::kGe: FilterSel(col, in, lit, CmpGe{}, out); break;
  }
}

// Fused aggregate accumulation over a selection: one pass updating
// sum/count/min/max through Acc::Add, in row order. Acc is duck-typed
// (AggState in practice) to keep this header free of executor types.
template <typename T, typename Acc>
inline void AccumulateSel(const T* col, const SelVector& sel, Acc* acc) {
  for (uint32_t i = 0; i < sel.count; ++i) {
    acc->Add(static_cast<double>(col[sel.rows[i]]));
  }
}

// Dense variant for the no-WHERE fast path: every row in [start, start+len)
// contributes.
template <typename T, typename Acc>
inline void AccumulateDense(const T* col, uint32_t start, uint32_t len,
                            Acc* acc) {
  for (uint32_t i = 0; i < len; ++i) {
    acc->Add(static_cast<double>(col[start + i]));
  }
}

}  // namespace seaweed::db
