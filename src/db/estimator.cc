#include "db/estimator.h"

#include <algorithm>

#include "db/schema.h"

namespace seaweed::db {

const ColumnSummary* RowCountEstimator::FindSummary(
    const std::string& column) const {
  if (!summaries_) return nullptr;
  for (const auto& s : *summaries_) {
    if (EqualsIgnoreCase(s.column_name(), column)) return &s;
  }
  return nullptr;
}

double RowCountEstimator::CompareSelectivity(const Predicate& p) const {
  const ColumnSummary* summary = FindSummary(p.column);
  const bool is_range = p.op != CompareOp::kEq && p.op != CompareOp::kNe;
  if (summary == nullptr || summary->total_rows() == 0) {
    if (total_rows_ == 0) return 0.0;
    double sel = is_range ? kDefaultRangeSelectivity : kDefaultEqSelectivity;
    return p.op == CompareOp::kNe ? 1.0 - kDefaultEqSelectivity : sel;
  }

  const double total = static_cast<double>(summary->total_rows());
  double rows = 0;
  if (summary->is_numeric()) {
    auto lit = p.literal.ToNumeric();
    if (!lit.ok()) return 0.0;  // type mismatch: matches nothing
    const double v = *lit;
    const NumericHistogram& h = summary->numeric();
    switch (p.op) {
      case CompareOp::kEq:
        rows = h.EstimateEqual(v);
        break;
      case CompareOp::kNe:
        rows = total - h.EstimateEqual(v);
        break;
      case CompareOp::kLt:
        rows = h.EstimateLess(v);
        break;
      case CompareOp::kLe:
        rows = h.EstimateLessOrEqual(v);
        break;
      case CompareOp::kGt:
        rows = total - h.EstimateLessOrEqual(v);
        break;
      case CompareOp::kGe:
        rows = total - h.EstimateLess(v);
        break;
    }
  } else {
    if (!p.literal.is_string()) return 0.0;
    const StringHistogram& h = summary->strings();
    double eq = h.EstimateEqual(p.literal.AsString());
    switch (p.op) {
      case CompareOp::kEq:
        rows = eq;
        break;
      case CompareOp::kNe:
        rows = total - eq;
        break;
      default:
        // Range over strings is unsupported in execution too.
        rows = total * kDefaultRangeSelectivity;
        break;
    }
  }
  return std::clamp(rows / total, 0.0, 1.0);
}

namespace {

// Flattens an AND subtree into its conjuncts.
void FlattenConjunction(const Predicate* p,
                        std::vector<const Predicate*>* out) {
  if (p->kind == Predicate::Kind::kAnd) {
    FlattenConjunction(p->left.get(), out);
    FlattenConjunction(p->right.get(), out);
  } else {
    out->push_back(p);
  }
}

}  // namespace

double RowCountEstimator::ConjunctionSelectivity(
    const std::vector<const Predicate*>& conjuncts) const {
  // Merge range predicates that constrain the same numeric column into a
  // single interval (ts >= NOW()-86400 AND ts <= NOW() must not be treated
  // as independent — that is the dominant predicate shape in the paper's
  // queries). Everything else multiplies under independence.
  struct Interval {
    std::optional<double> lo;
    bool lo_inclusive = true;
    std::optional<double> hi;
    bool hi_inclusive = true;
    const ColumnSummary* summary = nullptr;
  };
  std::vector<std::pair<std::string, Interval>> intervals;
  double selectivity = 1.0;

  for (const Predicate* p : conjuncts) {
    bool merged = false;
    if (p->kind == Predicate::Kind::kCompare && p->op != CompareOp::kEq &&
        p->op != CompareOp::kNe) {
      const ColumnSummary* summary = FindSummary(p->column);
      auto lit = p->literal.ToNumeric();
      if (summary != nullptr && summary->is_numeric() && lit.ok()) {
        Interval* iv = nullptr;
        for (auto& [col, existing] : intervals) {
          if (EqualsIgnoreCase(col, p->column)) {
            iv = &existing;
            break;
          }
        }
        if (iv == nullptr) {
          intervals.emplace_back(p->column, Interval{});
          iv = &intervals.back().second;
          iv->summary = summary;
        }
        const double v = *lit;
        switch (p->op) {
          case CompareOp::kLt:
            if (!iv->hi || v < *iv->hi) {
              iv->hi = v;
              iv->hi_inclusive = false;
            }
            break;
          case CompareOp::kLe:
            if (!iv->hi || v < *iv->hi) {
              iv->hi = v;
              iv->hi_inclusive = true;
            }
            break;
          case CompareOp::kGt:
            if (!iv->lo || v > *iv->lo) {
              iv->lo = v;
              iv->lo_inclusive = false;
            }
            break;
          case CompareOp::kGe:
            if (!iv->lo || v > *iv->lo) {
              iv->lo = v;
              iv->lo_inclusive = true;
            }
            break;
          default:
            break;
        }
        merged = true;
      }
    }
    if (!merged) {
      selectivity *= SelectivityOf(p);
    }
  }

  for (const auto& [col, iv] : intervals) {
    const double total = static_cast<double>(iv.summary->total_rows());
    if (total <= 0) return 0.0;
    double rows = iv.summary->numeric().EstimateRange(
        iv.lo, iv.lo_inclusive, iv.hi, iv.hi_inclusive);
    selectivity *= std::clamp(rows / total, 0.0, 1.0);
  }
  return selectivity;
}

double RowCountEstimator::SelectivityOf(const Predicate* p) const {
  if (p == nullptr) return 1.0;
  switch (p->kind) {
    case Predicate::Kind::kTrue:
      return 1.0;
    case Predicate::Kind::kCompare:
      return CompareSelectivity(*p);
    case Predicate::Kind::kAnd: {
      std::vector<const Predicate*> conjuncts;
      FlattenConjunction(p, &conjuncts);
      return ConjunctionSelectivity(conjuncts);
    }
    case Predicate::Kind::kOr: {
      double a = SelectivityOf(p->left.get());
      double b = SelectivityOf(p->right.get());
      return a + b - a * b;
    }
  }
  return 1.0;
}

double RowCountEstimator::EstimateSelectivity(
    const PredicatePtr& predicate) const {
  return SelectivityOf(predicate.get());
}

double RowCountEstimator::EstimateRows(const PredicatePtr& predicate) const {
  return EstimateSelectivity(predicate) * static_cast<double>(total_rows_);
}

}  // namespace seaweed::db
