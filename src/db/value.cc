#include "db/value.h"

#include <cmath>

#include "common/logging.h"

namespace seaweed::db {

const char* ColumnTypeName(ColumnType t) {
  switch (t) {
    case ColumnType::kInt64:
      return "INT64";
    case ColumnType::kDouble:
      return "DOUBLE";
    case ColumnType::kString:
      return "STRING";
  }
  return "?";
}

Result<double> Value::ToNumeric() const {
  if (is_int64()) return static_cast<double>(AsInt64());
  if (is_double()) return AsDouble();
  return Status::InvalidArgument("string value used in numeric context: '" +
                                 AsString() + "'");
}

int Value::Compare(const Value& other) const {
  if (is_string() || other.is_string()) {
    SEAWEED_CHECK_MSG(is_string() && other.is_string(),
                      "string compared against numeric");
    const std::string& a = AsString();
    const std::string& b = other.AsString();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (is_int64() && other.is_int64()) {
    int64_t a = AsInt64(), b = other.AsInt64();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  double a = is_int64() ? static_cast<double>(AsInt64()) : AsDouble();
  double b = other.is_int64() ? static_cast<double>(other.AsInt64())
                              : other.AsDouble();
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

void Value::Encode(Writer& w) const {
  w.PutU8(static_cast<uint8_t>(type()));
  switch (type()) {
    case ColumnType::kInt64:
      w.PutI64(AsInt64());
      break;
    case ColumnType::kDouble:
      w.PutDouble(AsDouble());
      break;
    case ColumnType::kString:
      w.PutString(AsString());
      break;
  }
}

Result<Value> Value::Decode(Reader& r) {
  SEAWEED_ASSIGN_OR_RETURN(uint8_t tag, r.GetU8());
  switch (static_cast<ColumnType>(tag)) {
    case ColumnType::kInt64: {
      SEAWEED_ASSIGN_OR_RETURN(int64_t v, r.GetI64());
      return Value(v);
    }
    case ColumnType::kDouble: {
      SEAWEED_ASSIGN_OR_RETURN(double v, r.GetDouble());
      return Value(v);
    }
    case ColumnType::kString: {
      SEAWEED_ASSIGN_OR_RETURN(std::string v, r.GetString());
      return Value(std::move(v));
    }
  }
  return Status::ParseError("bad value type tag");
}

std::string Value::ToString() const {
  if (is_int64()) return std::to_string(AsInt64());
  if (is_double()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", AsDouble());
    return buf;
  }
  return "'" + AsString() + "'";
}

}  // namespace seaweed::db
