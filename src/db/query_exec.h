// Query execution: predicate compilation, aggregate accumulators, and the
// single-table executor every Seaweed endsystem runs locally.
//
// Aggregate states are *mergeable* — the property in-network aggregation
// (§3.4) depends on: merging the per-endsystem states in any order and any
// grouping yields the same final answer. AVG is carried as (sum, count).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/result.h"
#include "common/serialize.h"
#include "db/ast.h"
#include "db/table.h"

namespace seaweed::db {

// A predicate bound against a concrete table schema for fast row evaluation.
// String literals are pre-resolved to dictionary codes.
class CompiledPredicate {
 public:
  // Binds `pred` to `table`. Fails on unknown columns or type mismatches
  // (e.g. string literal compared against a numeric column).
  static Result<CompiledPredicate> Bind(const PredicatePtr& pred,
                                        const Table& table);

  bool Matches(const Table& table, size_t row) const;

 private:
  struct Node {
    Predicate::Kind kind;
    // kCompare:
    int column_index = -1;
    ColumnType column_type = ColumnType::kInt64;
    CompareOp op = CompareOp::kEq;
    int64_t int_literal = 0;
    double double_literal = 0;
    int64_t string_code = -1;  // -1 = literal absent from dictionary
    bool literal_is_int = true;
    // kAnd/kOr: child indices into nodes_.
    int left = -1;
    int right = -1;
  };

  static Result<int> BindNode(const PredicatePtr& pred, const Table& table,
                              std::vector<Node>* nodes);
  bool EvalNode(int idx, const Table& table, size_t row) const;

  std::vector<Node> nodes_;
  int root_ = -1;
};

// Accumulator for one aggregate select item.
struct AggState {
  double sum = 0;
  int64_t count = 0;  // rows contributing to this aggregate
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  void Add(double v) {
    sum += v;
    ++count;
    if (v < min) min = v;
    if (v > max) max = v;
  }
  void AddCountOnly() { ++count; }

  void Merge(const AggState& other);

  // Final scalar for the given function; COUNT of nothing is 0, other
  // functions over an empty input return NotFound ("NULL").
  Result<Value> Final(AggFunc func) const;

  void Serialize(Writer* w) const;
  static Result<AggState> Deserialize(Reader* r);

  bool operator==(const AggState&) const = default;
};

// The distributed result unit: one AggState per select item plus the count
// of matching rows and contributing endsystems. This is what flows up the
// Seaweed aggregation tree.
//
// For GROUP BY queries, `groups` holds one AggState vector per group key
// (sorted by key); merging is per-key, so grouped results aggregate
// in-network exactly like plain ones. The aggregate-item AggStates for
// the bare group-column select item are unused placeholders.
struct AggregateResult {
  std::vector<AggState> states;
  // Sorted by key; empty for ungrouped queries.
  std::vector<std::pair<Value, std::vector<AggState>>> groups;
  int64_t rows_matched = 0;
  int64_t endsystems = 0;

  void Merge(const AggregateResult& other);

  // States for `key`, creating the group if absent (keeps `groups` sorted).
  std::vector<AggState>& GroupStates(const Value& key, size_t arity);
  const std::vector<AggState>* FindGroup(const Value& key) const;

  void Serialize(Writer* w) const;
  static Result<AggregateResult> Deserialize(Reader* r);
  size_t SerializedBytes() const;

  bool operator==(const AggregateResult&) const = default;
};

// Executes an aggregate-only query against a local table.
Result<AggregateResult> ExecuteAggregate(const Table& table,
                                         const SelectQuery& query);

// Counts rows matching the query's WHERE clause (used for exact row counts
// on available endsystems and as ground truth in the evaluation).
Result<int64_t> CountMatching(const Table& table, const SelectQuery& query);

// Projection result for non-aggregate local queries.
struct RowSet {
  std::vector<std::string> column_names;
  std::vector<std::vector<Value>> rows;
};

// Executes a projection (non-aggregate) query locally. Distributed execution
// is restricted to aggregates; this supports the paper's local queries.
Result<RowSet> ExecuteSelect(const Table& table, const SelectQuery& query,
                             size_t limit = SIZE_MAX);

}  // namespace seaweed::db
