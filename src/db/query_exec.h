// Query execution: predicate compilation, aggregate accumulators, and the
// single-table executor every Seaweed endsystem runs locally.
//
// Two engines share one binding layer:
//  * The batch (vectorized) engine — the production path. Predicates
//    compile to flat, type-specialized column kernels producing a selection
//    vector per ~1024-row batch (see batch_kernels.h); aggregation runs
//    fused SUM/COUNT/MIN/MAX kernels over the selection with no Value
//    boxing; GROUP BY on a dictionary column uses dense array-indexed
//    accumulators sized by dict_size().
//  * The scalar row-at-a-time engine — retained as the reference
//    implementation for differential testing and as the "before" baseline
//    in benchmarks. Both produce bit-identical results (the batch engine
//    preserves row order, so floating-point accumulation order matches).
//
// Aggregate states are *mergeable* — the property in-network aggregation
// (§3.4) depends on: merging the per-endsystem states in any order and any
// grouping yields the same final answer. AVG is carried as (sum, count).
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/serialize.h"
#include "db/aggregate.h"
#include "db/ast.h"
#include "db/batch_kernels.h"
#include "db/sketch.h"
#include "db/table.h"
#include "obs/metrics.h"

namespace seaweed::db {

// A predicate bound against a concrete table schema for fast row evaluation.
// String literals are pre-resolved to dictionary codes.
//
// This is the scalar reference path; the batch engine uses BatchPredicate.
class CompiledPredicate {
 public:
  // Binds `pred` to `table`. Fails on unknown columns or type mismatches
  // (e.g. string literal compared against a numeric column).
  static Result<CompiledPredicate> Bind(const PredicatePtr& pred,
                                        const Table& table);

  bool Matches(const Table& table, size_t row) const;

 private:
  struct Node {
    Predicate::Kind kind;
    // kCompare:
    int column_index = -1;
    ColumnType column_type = ColumnType::kInt64;
    CompareOp op = CompareOp::kEq;
    int64_t int_literal = 0;
    double double_literal = 0;
    int64_t string_code = -1;  // -1 = literal absent from dictionary
    bool literal_is_int = true;
    // kAnd/kOr: child indices into nodes_.
    int left = -1;
    int right = -1;
  };

  static Result<int> BindNode(const PredicatePtr& pred, const Table& table,
                              std::vector<Node>* nodes);
  bool EvalNode(int idx, const Table& table, size_t row) const;

  std::vector<Node> nodes_;
  int root_ = -1;
};

// A predicate compiled to batch kernels. AND/OR become selection-vector
// composition/union; dictionary-coded string equality becomes a uint32_t
// compare against a pre-resolved code.
class BatchPredicate {
 public:
  static Result<BatchPredicate> Bind(const PredicatePtr& pred,
                                     const Table& table);

  // Fills `out` with the sorted ids of matching rows among
  // [start, start + len). `len` must be <= kBatchSize.
  void FilterBatch(const Table& table, uint32_t start, uint32_t len,
                   SelVector* out) const;

  // True when the predicate matches every row (no WHERE clause): the
  // executor then skips selection vectors entirely.
  bool always_true() const {
    return root_ >= 0 &&
           nodes_[static_cast<size_t>(root_)].kind == Predicate::Kind::kTrue;
  }

  // Cheap re-validation for plan caching: the bound column indices, types,
  // and dictionary codes still describe `table`. A deterministic regenerated
  // table passes; a reshaped one forces a re-bind.
  bool CompatibleWith(const Table& table) const;

 private:
  struct Node {
    Predicate::Kind kind;
    // kCompare:
    int column_index = -1;
    ColumnType column_type = ColumnType::kInt64;
    CompareOp op = CompareOp::kEq;
    int64_t int_literal = 0;
    double double_literal = 0;
    int64_t string_code = -1;  // -1 = literal absent from dictionary
    bool literal_is_int = true;
    std::string string_literal;  // retained for cache re-validation
    // kAnd/kOr: child indices into nodes_.
    int left = -1;
    int right = -1;
  };

  static Result<int> BindNode(const PredicatePtr& pred, const Table& table,
                              std::vector<Node>* nodes);
  // Evaluates node `idx` over the batch: with in == nullptr the node scans
  // [start, start + len) densely, otherwise it refines *in. Appends to *out.
  void EvalNode(int idx, const Table& table, uint32_t start, uint32_t len,
                const SelVector* in, SelVector* out) const;

  std::vector<Node> nodes_;
  int root_ = -1;
};

// Accumulator for one aggregate select item. Every state carries the exact
// (sum, count, min, max) quad; sketch functions additionally attach a
// SketchState (see db/sketch.h) whose wire tag comes from the function's
// AggDescriptor. Copyable (deep sketch clone) so results replicate.
struct AggState {
  double sum = 0;
  int64_t count = 0;  // rows contributing to this aggregate
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  std::unique_ptr<SketchState> sketch;  // null for exact functions

  AggState() = default;
  AggState(const AggState& other) { *this = other; }
  AggState& operator=(const AggState& other) {
    sum = other.sum;
    count = other.count;
    min = other.min;
    max = other.max;
    sketch = other.sketch ? other.sketch->Clone() : nullptr;
    return *this;
  }
  AggState(AggState&&) = default;
  AggState& operator=(AggState&&) = default;

  void Add(double v) {
    sum += v;
    ++count;
    if (v < min) min = v;
    if (v > max) max = v;
    if (sketch) sketch->Update(v);
  }
  void AddString(const std::string& s) {
    ++count;
    if (sketch) sketch->UpdateString(s);
  }
  void AddCountOnly() { ++count; }

  void Merge(const AggState& other);

  void Encode(Writer& w) const;
  static Result<AggState> Decode(Reader& r);

  bool operator==(const AggState& other) const;
};

// The distributed result unit: one AggState per select item plus the count
// of matching rows and contributing endsystems. This is what flows up the
// Seaweed aggregation tree.
//
// For GROUP BY queries, `groups` holds one AggState vector per group key
// (sorted by key); merging is per-key, so grouped results aggregate
// in-network exactly like plain ones. The aggregate-item AggStates for
// the bare group-column select item are unused placeholders.
struct AggregateResult {
  std::vector<AggState> states;
  // Sorted by key; empty for ungrouped queries.
  std::vector<std::pair<Value, std::vector<AggState>>> groups;
  int64_t rows_matched = 0;
  int64_t endsystems = 0;

  void Merge(const AggregateResult& other);

  // States for `key`, creating the group if absent (keeps `groups` sorted).
  std::vector<AggState>& GroupStates(const Value& key, size_t arity);
  const std::vector<AggState>* FindGroup(const Value& key) const;

  void Encode(Writer& w) const;
  static Result<AggregateResult> Decode(Reader& r);
  size_t EncodedBytes() const;

  // True when any state (top-level or grouped) carries a sketch; the
  // node-level seaweed.sketch.* metrics key off these.
  bool HasSketchStates() const;
  // Total encoded bytes of all attached sketches.
  size_t SketchStateBytes() const;

  bool operator==(const AggregateResult&) const = default;
};

// An aggregate query fully bound against one table: batch predicate plus
// resolved aggregate inputs and group column. Bind once, execute many —
// SeaweedNode caches these per query so repeated incremental executions
// skip re-binding.
class CompiledQuery {
 public:
  static Result<CompiledQuery> Bind(const Table& table,
                                    const SelectQuery& query);

  // Executes against `table` with the batch engine. The table must be
  // compatible with the one the plan was bound against (same schema and
  // dictionary codes for bound string literals); use CompatibleWith to
  // re-validate a cached plan against a regenerated table.
  Result<AggregateResult> Execute(const Table& table) const;

  bool CompatibleWith(const Table& table) const;

 private:
  struct AggInput {
    const AggregateFunction* func = nullptr;  // registry-owned
    double param = 0;  // effective parameter (explicit or default)
    int column = -1;   // -1 for COUNT(*) or the bare group-by column
    bool is_group_column = false;
    ColumnType type = ColumnType::kInt64;
  };

  void AccumulateUngrouped(const Table& table, const SelVector& sel,
                           AggregateResult* result) const;
  void AccumulateUngroupedDense(const Table& table, uint32_t start,
                                uint32_t len, AggregateResult* result) const;

  BatchPredicate pred_;
  std::vector<AggInput> inputs_;
  int group_column_ = -1;
  ColumnType group_type_ = ColumnType::kInt64;
  size_t num_columns_ = 0;  // schema arity at bind time (re-validation)
  bool any_sketch_ = false;  // disables the dense GROUP BY fast path

  friend class AggregateCursor;
};

// Resumable execution of a CompiledQuery (SaGe-style time slicing): Step()
// processes up to `max_batches` ~1024-row batches and returns whether the
// scan has finished; Take() finalizes (dense GROUP BY emit) and yields the
// result. Execute() is Step-to-completion, so sliced and one-shot runs
// accumulate in the same batch order and produce bit-identical results.
// `plan` and `table` must outlive the cursor.
class AggregateCursor {
 public:
  AggregateCursor(const CompiledQuery* plan, const Table* table);

  // Advances the scan; returns true once all rows have been consumed.
  bool Step(size_t max_batches);
  bool done() const { return next_row_ >= total_rows_; }
  // Valid once done(); consumes the accumulated result.
  AggregateResult Take();

  uint64_t rows_scanned() const { return next_row_; }
  size_t total_rows() const { return total_rows_; }

 private:
  const CompiledQuery* plan_;
  const Table* table_;
  size_t total_rows_ = 0;
  size_t next_row_ = 0;
  AggregateResult result_;
  const Column* group_col_ = nullptr;
  bool dense_group_ = false;
  bool no_filter_ = false;
  std::vector<AggState> dense_states_;
  std::vector<int64_t> dense_rows_;
  const uint32_t* group_codes_ = nullptr;
  SelVector sel_;
};

// Cache of compiled plans keyed by an opaque caller-chosen key (SeaweedNode
// uses the query id). A hit is re-validated against the current table (and
// the query fingerprint, since keys could theoretically be reused) and
// silently re-bound when stale.
class PlanCache {
 public:
  // Publishes cache behavior to `registry`: "db.plan_cache.hits"/".binds"
  // counters and "db.rows_scanned"/"db.rows_selected" histograms (recorded
  // by Database::ExecuteAggregateCached per execution).
  void AttachMetrics(obs::MetricsRegistry* registry);
  void RecordExecution(uint64_t rows_scanned, uint64_t rows_selected);

  // Returns a plan valid for (table, query), binding on miss/staleness.
  // The pointer is owned by the cache and invalidated by the next
  // GetOrBind/Erase/Clear for the same key.
  Result<const CompiledQuery*> GetOrBind(const std::string& key,
                                         const Table& table,
                                         const SelectQuery& query);

  void Erase(const std::string& key) { plans_.erase(key); }
  void Clear() { plans_.clear(); }
  size_t size() const { return plans_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t binds() const { return binds_; }

 private:
  struct Entry {
    std::string fingerprint;  // SelectQuery::ToString() at bind time
    CompiledQuery plan;
  };
  std::unordered_map<std::string, Entry> plans_;
  uint64_t hits_ = 0;
  uint64_t binds_ = 0;
  obs::Counter* hits_metric_ = nullptr;
  obs::Counter* binds_metric_ = nullptr;
  obs::Histogram* rows_scanned_ = nullptr;
  obs::Histogram* rows_selected_ = nullptr;
};

// Executes an aggregate-only query against a local table (batch engine).
Result<AggregateResult> ExecuteAggregate(const Table& table,
                                         const SelectQuery& query);

// Reference row-at-a-time executor. Kept for differential testing and as
// the benchmark baseline; produces bit-identical results to the batch
// engine.
Result<AggregateResult> ExecuteAggregateScalar(const Table& table,
                                               const SelectQuery& query);

// Counts rows matching the query's WHERE clause (used for exact row counts
// on available endsystems and as ground truth in the evaluation).
Result<int64_t> CountMatching(const Table& table, const SelectQuery& query);

// Projection result for non-aggregate local queries.
struct RowSet {
  std::vector<std::string> column_names;
  std::vector<std::vector<Value>> rows;
};

// Executes a projection (non-aggregate) query locally. Distributed execution
// is restricted to aggregates; this supports the paper's local queries.
Result<RowSet> ExecuteSelect(const Table& table, const SelectQuery& query,
                             size_t limit = SIZE_MAX);

}  // namespace seaweed::db
