// Column histograms: the data-summary half of Seaweed's metadata (§3.2.2).
//
// Numeric columns get equi-depth histograms (the standard DBMS structure the
// paper relies on: "standard row count estimation techniques on the
// replicated histogram information"). String columns get a most-common-value
// (MCV) list, which is what equality predicates like App='SMB' need.
//
// Serialized size is meaningful: it is the `h` parameter of the analytic
// model (Table 1 measures 6,473 bytes for the five Anemone histograms), so
// Encode() is the single source of truth for metadata bytes on the wire.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/serialize.h"
#include "db/table.h"

namespace seaweed::db {

// Equi-depth histogram over a numeric column.
class NumericHistogram {
 public:
  // Builds from a column (int64 or double) with at most `max_buckets`
  // buckets. SQL Server caps histograms at 200 steps; we default to that.
  static NumericHistogram Build(const Column& column, int max_buckets = 200);
  static NumericHistogram BuildFromValues(std::vector<double> values,
                                          int max_buckets = 200);

  int64_t total_rows() const { return total_rows_; }
  size_t num_buckets() const { return buckets_.size(); }

  // Estimated number of rows with value <= v (inclusive) / < v (exclusive).
  double EstimateLessOrEqual(double v) const;
  double EstimateLess(double v) const;
  // Estimated rows equal to v.
  double EstimateEqual(double v) const;
  // Estimated rows in an interval; unset bounds are unbounded.
  double EstimateRange(std::optional<double> lo, bool lo_inclusive,
                       std::optional<double> hi, bool hi_inclusive) const;

  void Encode(Writer& w) const;
  static Result<NumericHistogram> Decode(Reader& r);
  size_t EncodedBytes() const;

  struct Bucket {
    double upper_bound;   // values in (prev_ub, upper_bound]
    int64_t row_count;    // rows in the bucket
    int64_t distinct;     // distinct values in the bucket

    bool operator==(const Bucket&) const = default;
  };
  const std::vector<Bucket>& buckets() const { return buckets_; }

 private:
  double min_value_ = 0;  // lower edge of the first bucket
  int64_t total_rows_ = 0;
  std::vector<Bucket> buckets_;
};

// MCV summary of a string column.
class StringHistogram {
 public:
  static StringHistogram Build(const Column& column, int max_mcvs = 32);

  int64_t total_rows() const { return total_rows_; }

  // Estimated rows with value == s. Unknown strings estimate from the
  // residual mass spread over residual distinct values.
  double EstimateEqual(const std::string& s) const;

  void Encode(Writer& w) const;
  static Result<StringHistogram> Decode(Reader& r);
  size_t EncodedBytes() const;

  struct Mcv {
    std::string value;
    int64_t count;

    bool operator==(const Mcv&) const = default;
  };
  const std::vector<Mcv>& mcvs() const { return mcvs_; }

 private:
  std::vector<Mcv> mcvs_;
  int64_t other_count_ = 0;
  int64_t other_distinct_ = 0;
  int64_t total_rows_ = 0;
};

// Summary of one column: exactly one of the two histogram kinds.
class ColumnSummary {
 public:
  static ColumnSummary Numeric(std::string column, NumericHistogram h);
  static ColumnSummary Strings(std::string column, StringHistogram h);

  const std::string& column_name() const { return column_; }
  bool is_numeric() const { return numeric_.has_value(); }
  const NumericHistogram& numeric() const { return *numeric_; }
  const StringHistogram& strings() const { return *strings_; }
  int64_t total_rows() const {
    return is_numeric() ? numeric_->total_rows() : strings_->total_rows();
  }

  void Encode(Writer& w) const;
  static Result<ColumnSummary> Decode(Reader& r);
  size_t EncodedBytes() const;

 private:
  std::string column_;
  std::optional<NumericHistogram> numeric_;
  std::optional<StringHistogram> strings_;
};

}  // namespace seaweed::db
