#include "db/table.h"

#include "common/logging.h"

namespace seaweed::db {

size_t Column::size() const {
  switch (type_) {
    case ColumnType::kInt64:
      return ints_.size();
    case ColumnType::kDouble:
      return doubles_.size();
    case ColumnType::kString:
      return codes_.size();
  }
  return 0;
}

void Column::AppendString(const std::string& v) {
  auto it = dict_index_.find(v);
  uint32_t code;
  if (it == dict_index_.end()) {
    code = static_cast<uint32_t>(dict_.size());
    dict_.push_back(v);
    dict_index_.emplace(v, code);
  } else {
    code = it->second;
  }
  codes_.push_back(code);
}

int64_t Column::DictCode(const std::string& v) const {
  auto it = dict_index_.find(v);
  return it == dict_index_.end() ? -1 : static_cast<int64_t>(it->second);
}

Value Column::ValueAt(size_t row) const {
  switch (type_) {
    case ColumnType::kInt64:
      return Value(ints_[row]);
    case ColumnType::kDouble:
      return Value(doubles_[row]);
    case ColumnType::kString:
      return Value(dict_[codes_[row]]);
  }
  return Value();
}

size_t Column::MemoryBytes() const {
  size_t bytes = ints_.size() * sizeof(int64_t) +
                 doubles_.size() * sizeof(double) +
                 codes_.size() * sizeof(uint32_t);
  for (const auto& s : dict_) bytes += s.size() + sizeof(std::string);
  return bytes;
}

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_columns());
  for (const auto& col : schema_.columns()) {
    columns_.emplace_back(col.type);
  }
}

Status Table::AppendRow(const std::vector<Value>& values) {
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(values.size()) + " != schema arity " +
        std::to_string(columns_.size()));
  }
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i].type() != schema_.column(i).type) {
      // Allow int literal into double column.
      if (!(values[i].is_int64() &&
            schema_.column(i).type == ColumnType::kDouble)) {
        return Status::InvalidArgument(
            "type mismatch for column " + schema_.column(i).name + ": got " +
            ColumnTypeName(values[i].type()));
      }
    }
  }
  for (size_t i = 0; i < values.size(); ++i) {
    switch (schema_.column(i).type) {
      case ColumnType::kInt64:
        columns_[i].AppendInt64(values[i].AsInt64());
        break;
      case ColumnType::kDouble:
        columns_[i].AppendDouble(values[i].is_int64()
                                     ? static_cast<double>(values[i].AsInt64())
                                     : values[i].AsDouble());
        break;
      case ColumnType::kString:
        columns_[i].AppendString(values[i].AsString());
        break;
    }
  }
  ++num_rows_;
  return Status::OK();
}

void Table::CommitRow() {
  ++num_rows_;
  for (const auto& c : columns_) {
    SEAWEED_DCHECK(c.size() == num_rows_);
  }
}

size_t Table::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& c : columns_) bytes += c.MemoryBytes();
  return bytes;
}

}  // namespace seaweed::db
