#include "db/sql_parser.h"

#include <cctype>
#include <cstdlib>

#include "db/aggregate.h"
#include "db/schema.h"

namespace seaweed::db {

namespace {

enum class TokKind {
  kEnd,
  kIdent,
  kNumber,
  kString,
  kSymbol,  // punctuation / operators
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;   // identifier text / symbol / string body
  double number = 0;  // for kNumber
  bool number_is_int = true;
  int64_t int_value = 0;
  size_t pos = 0;  // offset in the input, for error messages
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) {}

  Result<Token> Next() {
    SkipSpace();
    Token t;
    t.pos = pos_;
    if (pos_ >= input_.size()) {
      t.kind = TokKind::kEnd;
      return t;
    }
    char c = input_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < input_.size() &&
             (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
              input_[pos_] == '_')) {
        ++pos_;
      }
      t.kind = TokKind::kIdent;
      t.text = input_.substr(start, pos_ - start);
      return t;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos_;
      bool is_int = true;
      while (pos_ < input_.size() &&
             (std::isdigit(static_cast<unsigned char>(input_[pos_])) ||
              input_[pos_] == '.' || input_[pos_] == 'e' ||
              input_[pos_] == 'E' ||
              ((input_[pos_] == '+' || input_[pos_] == '-') && pos_ > start &&
               (input_[pos_ - 1] == 'e' || input_[pos_ - 1] == 'E')))) {
        if (input_[pos_] == '.' || input_[pos_] == 'e' || input_[pos_] == 'E') {
          is_int = false;
        }
        ++pos_;
      }
      std::string text = input_.substr(start, pos_ - start);
      t.kind = TokKind::kNumber;
      t.number_is_int = is_int;
      if (is_int) {
        t.int_value = std::strtoll(text.c_str(), nullptr, 10);
        t.number = static_cast<double>(t.int_value);
      } else {
        t.number = std::strtod(text.c_str(), nullptr);
      }
      return t;
    }
    if (c == '\'') {
      ++pos_;
      std::string body;
      while (pos_ < input_.size()) {
        if (input_[pos_] == '\'') {
          // '' escapes a quote.
          if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '\'') {
            body.push_back('\'');
            pos_ += 2;
            continue;
          }
          ++pos_;
          t.kind = TokKind::kString;
          t.text = std::move(body);
          return t;
        }
        body.push_back(input_[pos_++]);
      }
      return Status::ParseError("unterminated string literal at offset " +
                                std::to_string(t.pos));
    }
    // Multi-char operators first.
    auto two = input_.substr(pos_, 2);
    if (two == "<=" || two == ">=" || two == "!=" || two == "<>") {
      pos_ += 2;
      t.kind = TokKind::kSymbol;
      t.text = (two == "<>") ? "!=" : two;
      return t;
    }
    static const std::string kSingles = "()*,=<>+-;";
    if (kSingles.find(c) != std::string::npos) {
      ++pos_;
      t.kind = TokKind::kSymbol;
      t.text = std::string(1, c);
      return t;
    }
    return Status::ParseError(std::string("unexpected character '") + c +
                              "' at offset " + std::to_string(pos_));
  }

 private:
  void SkipSpace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }
  const std::string& input_;
  size_t pos_ = 0;
};

bool KeywordIs(const Token& t, const char* kw) {
  return t.kind == TokKind::kIdent && EqualsIgnoreCase(t.text, kw);
}

class Parser {
 public:
  Parser(const std::string& sql, const ParseOptions& options)
      : lexer_(sql), options_(options) {}

  Result<SelectQuery> Parse() {
    SEAWEED_RETURN_NOT_OK(Advance());
    SEAWEED_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    SelectQuery query;
    SEAWEED_RETURN_NOT_OK(ParseSelectList(&query));
    SEAWEED_RETURN_NOT_OK(ExpectKeyword("FROM"));
    if (cur_.kind != TokKind::kIdent) {
      return Err("expected table name");
    }
    query.table = cur_.text;
    SEAWEED_RETURN_NOT_OK(Advance());
    if (KeywordIs(cur_, "WHERE")) {
      SEAWEED_RETURN_NOT_OK(Advance());
      SEAWEED_ASSIGN_OR_RETURN(query.where, ParseExpr());
    } else {
      query.where = Predicate::True();
    }
    if (KeywordIs(cur_, "GROUP")) {
      SEAWEED_RETURN_NOT_OK(Advance());
      SEAWEED_RETURN_NOT_OK(ExpectKeyword("BY"));
      if (cur_.kind != TokKind::kIdent) {
        return Err("expected column name after GROUP BY");
      }
      query.group_by = cur_.text;
      SEAWEED_RETURN_NOT_OK(Advance());
    }
    // Optional trailing semicolon.
    if (cur_.kind == TokKind::kSymbol && cur_.text == ";") {
      SEAWEED_RETURN_NOT_OK(Advance());
    }
    if (cur_.kind != TokKind::kEnd) {
      return Err("unexpected trailing input: '" + cur_.text + "'");
    }
    return query;
  }

 private:
  Status Advance() {
    SEAWEED_ASSIGN_OR_RETURN(cur_, lexer_.Next());
    return Status::OK();
  }

  Status Err(const std::string& msg) {
    return Status::ParseError(msg + " at offset " + std::to_string(cur_.pos));
  }

  Status ExpectKeyword(const char* kw) {
    if (!KeywordIs(cur_, kw)) {
      return Err(std::string("expected ") + kw);
    }
    return Advance();
  }

  Status ExpectSymbol(const char* sym) {
    if (cur_.kind != TokKind::kSymbol || cur_.text != sym) {
      return Err(std::string("expected '") + sym + "'");
    }
    return Advance();
  }

  Status ParseSelectList(SelectQuery* query) {
    for (;;) {
      SelectItem item;
      const AggregateFunction* func =
          cur_.kind == TokKind::kIdent ? FindAggregate(cur_.text) : nullptr;
      if (func != nullptr) {
        item.is_aggregate = true;
        item.func = func;
        SEAWEED_RETURN_NOT_OK(Advance());
        SEAWEED_RETURN_NOT_OK(ExpectSymbol("("));
        if (cur_.kind == TokKind::kSymbol && cur_.text == "*") {
          if (!func->descriptor().allows_star) {
            return Err("only COUNT may take '*'");
          }
          SEAWEED_RETURN_NOT_OK(Advance());
        } else if (cur_.kind == TokKind::kIdent) {
          item.column = cur_.text;
          SEAWEED_RETURN_NOT_OK(Advance());
        } else {
          return Err("expected column name or '*'");
        }
        if (cur_.kind == TokKind::kSymbol && cur_.text == ",") {
          if (!func->descriptor().takes_param) {
            return Err(func->name() + " does not take a parameter");
          }
          SEAWEED_RETURN_NOT_OK(Advance());
          if (cur_.kind != TokKind::kNumber) {
            return Err("expected numeric parameter for " + func->name());
          }
          Status ok = func->ValidateParam(cur_.number);
          if (!ok.ok()) {
            return Err(ok.message());
          }
          item.param = cur_.number;
          item.has_param = true;
          SEAWEED_RETURN_NOT_OK(Advance());
        }
        SEAWEED_RETURN_NOT_OK(ExpectSymbol(")"));
      } else if (cur_.kind == TokKind::kSymbol && cur_.text == "*") {
        SEAWEED_RETURN_NOT_OK(Advance());
      } else if (cur_.kind == TokKind::kIdent) {
        item.column = cur_.text;
        SEAWEED_RETURN_NOT_OK(Advance());
      } else {
        return Err("expected select item");
      }
      query->items.push_back(std::move(item));
      if (cur_.kind == TokKind::kSymbol && cur_.text == ",") {
        SEAWEED_RETURN_NOT_OK(Advance());
        continue;
      }
      break;
    }
    return Status::OK();
  }

  Result<PredicatePtr> ParseExpr() {
    SEAWEED_ASSIGN_OR_RETURN(PredicatePtr left, ParseConj());
    while (KeywordIs(cur_, "OR")) {
      SEAWEED_RETURN_NOT_OK(Advance());
      SEAWEED_ASSIGN_OR_RETURN(PredicatePtr right, ParseConj());
      left = Predicate::Or(std::move(left), std::move(right));
    }
    return left;
  }

  Result<PredicatePtr> ParseConj() {
    SEAWEED_ASSIGN_OR_RETURN(PredicatePtr left, ParseAtom());
    while (KeywordIs(cur_, "AND")) {
      SEAWEED_RETURN_NOT_OK(Advance());
      SEAWEED_ASSIGN_OR_RETURN(PredicatePtr right, ParseAtom());
      left = Predicate::And(std::move(left), std::move(right));
    }
    return left;
  }

  Result<PredicatePtr> ParseAtom() {
    if (cur_.kind == TokKind::kSymbol && cur_.text == "(") {
      SEAWEED_RETURN_NOT_OK(Advance());
      SEAWEED_ASSIGN_OR_RETURN(PredicatePtr inner, ParseExpr());
      SEAWEED_RETURN_NOT_OK(ExpectSymbol(")"));
      return inner;
    }
    if (cur_.kind != TokKind::kIdent) {
      return Status::ParseError("expected column name at offset " +
                                std::to_string(cur_.pos));
    }
    std::string column = cur_.text;
    SEAWEED_RETURN_NOT_OK(Advance());
    if (cur_.kind != TokKind::kSymbol) {
      return Err("expected comparison operator");
    }
    CompareOp op;
    if (cur_.text == "=") op = CompareOp::kEq;
    else if (cur_.text == "!=") op = CompareOp::kNe;
    else if (cur_.text == "<") op = CompareOp::kLt;
    else if (cur_.text == "<=") op = CompareOp::kLe;
    else if (cur_.text == ">") op = CompareOp::kGt;
    else if (cur_.text == ">=") op = CompareOp::kGe;
    else return Err("expected comparison operator, got '" + cur_.text + "'");
    SEAWEED_RETURN_NOT_OK(Advance());
    SEAWEED_ASSIGN_OR_RETURN(Value literal, ParseScalar());
    return Predicate::Compare(std::move(column), op, std::move(literal));
  }

  // scalar := literal (('+'|'-') literal)*, constant-folded. Mixed
  // string/number arithmetic is rejected.
  Result<Value> ParseScalar() {
    SEAWEED_ASSIGN_OR_RETURN(Value acc, ParseLiteral());
    while (cur_.kind == TokKind::kSymbol &&
           (cur_.text == "+" || cur_.text == "-")) {
      bool add = cur_.text == "+";
      SEAWEED_RETURN_NOT_OK(Advance());
      SEAWEED_ASSIGN_OR_RETURN(Value rhs, ParseLiteral());
      if (acc.is_string() || rhs.is_string()) {
        return Status::ParseError("arithmetic on string literal");
      }
      if (acc.is_int64() && rhs.is_int64()) {
        acc = Value(add ? acc.AsInt64() + rhs.AsInt64()
                        : acc.AsInt64() - rhs.AsInt64());
      } else {
        double a = acc.is_int64() ? static_cast<double>(acc.AsInt64())
                                  : acc.AsDouble();
        double b = rhs.is_int64() ? static_cast<double>(rhs.AsInt64())
                                  : rhs.AsDouble();
        acc = Value(add ? a + b : a - b);
      }
    }
    return acc;
  }

  Result<Value> ParseLiteral() {
    if (cur_.kind == TokKind::kNumber) {
      Value v = cur_.number_is_int ? Value(cur_.int_value) : Value(cur_.number);
      SEAWEED_RETURN_NOT_OK(Advance());
      return v;
    }
    if (cur_.kind == TokKind::kString) {
      Value v{cur_.text};
      SEAWEED_RETURN_NOT_OK(Advance());
      return v;
    }
    if (KeywordIs(cur_, "NOW")) {
      SEAWEED_RETURN_NOT_OK(Advance());
      SEAWEED_RETURN_NOT_OK(ExpectSymbol("("));
      SEAWEED_RETURN_NOT_OK(ExpectSymbol(")"));
      return Value(options_.now_unix_seconds);
    }
    // Negative numbers.
    if (cur_.kind == TokKind::kSymbol && cur_.text == "-") {
      SEAWEED_RETURN_NOT_OK(Advance());
      if (cur_.kind != TokKind::kNumber) {
        return Err("expected number after unary '-'");
      }
      Value v = cur_.number_is_int ? Value(-cur_.int_value)
                                   : Value(-cur_.number);
      SEAWEED_RETURN_NOT_OK(Advance());
      return v;
    }
    return Err("expected literal");
  }

  Lexer lexer_;
  ParseOptions options_;
  Token cur_;
};

}  // namespace

Result<SelectQuery> ParseSelect(const std::string& sql,
                                const ParseOptions& options) {
  Parser parser(sql, options);
  return parser.Parse();
}

}  // namespace seaweed::db
