// Table schemas.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "db/value.h"

namespace seaweed::db {

struct ColumnDef {
  std::string name;
  ColumnType type;
  // Indexed columns get histograms in the data summary (§3.2.2: "histograms
  // on indexed columns of the local database").
  bool indexed = false;
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns)
      : columns_(std::move(columns)) {}

  const std::vector<ColumnDef>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }

  // Case-insensitive lookup; returns -1 when absent.
  int FindColumn(const std::string& name) const;

  Result<int> RequireColumn(const std::string& name) const;

 private:
  std::vector<ColumnDef> columns_;
};

// Case-insensitive ASCII string equality (SQL identifiers).
bool EqualsIgnoreCase(const std::string& a, const std::string& b);

}  // namespace seaweed::db
