// The pluggable aggregate-function registry.
//
// Every aggregate the SQL surface understands — exact (SUM, COUNT, AVG,
// MIN, MAX) and approximate (DISTINCT_APPROX, QUANTILE, TOPK) — is an
// AggregateFunction registered in the global AggregateRegistry. The parser
// resolves select-list names through the registry, the executors
// accumulate through the function's batch hook, the wire codec round-trips
// states through the function's state tag, and the result formatter
// finalizes through the function — so adding an aggregate is one
// registration call, not a five-layer switch edit.
//
// The exactness contract (what the loopback/chaos differentials rely on):
//  * exact functions (state_tag 0) carry only the (sum, count, min, max)
//    quad; merging per-endsystem states in ANY order and grouping yields
//    byte-identical finalized answers.
//  * sketch functions (state_tag != 0) are deterministic given the merge
//    tree: the same children merged in the same order produce identical
//    bytes, but different tree shapes may differ within the documented
//    error bound (AggDescriptor::error_bound).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "db/batch_kernels.h"
#include "db/value.h"

namespace seaweed::db {

struct AggState;
class SketchState;
class Table;

struct AggDescriptor {
  // Canonical upper-case SQL name; lookup is case-insensitive.
  std::string name;
  // Wire tag of the AggState payload: 0 = exact quad only (shared by all
  // exact functions), nonzero = sketch payload type. Nonzero tags must be
  // unique across the registry and must never be renumbered.
  uint8_t state_tag = 0;
  // True when any merge order/grouping yields byte-identical answers.
  bool exact = true;
  // Human-readable error bound for approximate functions (shown in docs
  // and PROTOCOL.md); empty for exact ones.
  std::string error_bound;
  bool allows_star = false;    // may be called as FUNC(*)
  bool allows_string = false;  // may aggregate a string column
  bool takes_param = false;    // FUNC(col, p) parameter accepted
  double default_param = 0;    // effective p when the query omits it
};

class AggregateFunction {
 public:
  explicit AggregateFunction(AggDescriptor desc) : desc_(std::move(desc)) {}
  virtual ~AggregateFunction() = default;

  const AggDescriptor& descriptor() const { return desc_; }
  const std::string& name() const { return desc_.name; }
  uint8_t state_tag() const { return desc_.state_tag; }
  bool exact() const { return desc_.exact; }
  bool IsSketch() const { return desc_.state_tag != kStateTagExact; }

  // Validates an explicit query parameter (QUANTILE's q, TOPK's k).
  virtual Status ValidateParam(double param) const;

  // Attaches this function's sketch to a fresh state; no-op for exact
  // functions. `param` is the select item's effective parameter.
  virtual void InitState(AggState& state, double param) const;

  // Accumulates the rows selected in `sel` (or the dense range
  // [start, start+len)) of `table` into `state`. `column` is -1 for
  // FUNC(*). The base implementation is the shared exact behavior: fused
  // quad kernels for numeric columns, a bare row count for '*' and string
  // columns. Sketch functions extend it to feed their sketch (numeric
  // values flow through AggState::Add's sketch hook; string columns are
  // routed to the sketch as dictionary entries).
  virtual void AccumulateBatch(const Table& table, int column,
                               const SelVector& sel, AggState& state) const;
  virtual void AccumulateDense(const Table& table, int column, uint32_t start,
                               uint32_t len, AggState& state) const;

  // Final scalar for `state`. COUNT of nothing is 0; other functions over
  // an empty input return NotFound (rendered as NULL).
  Result<Value> Finalize(const AggState& state) const {
    return FinalizeImpl(state, desc_.default_param);
  }
  Result<Value> Finalize(const AggState& state, double param) const {
    return FinalizeImpl(state, param);
  }

 protected:
  virtual Result<Value> FinalizeImpl(const AggState& state,
                                     double param) const = 0;

 private:
  AggDescriptor desc_;

  static constexpr uint8_t kStateTagExact = 0;
};

// Global function registry. Built-ins are registered on first access;
// additional functions may be registered at startup (registration is not
// thread-safe, lookups are).
class AggregateRegistry {
 public:
  static AggregateRegistry& Global();

  // Takes ownership; CHECK-fails on a duplicate name or duplicate nonzero
  // state tag. Returns the stable registered pointer.
  const AggregateFunction* Register(std::unique_ptr<AggregateFunction> fn);

  // Case-insensitive name lookup; nullptr when unknown.
  const AggregateFunction* Find(const std::string& name) const;
  // Sketch-state decode dispatch; nullptr for tag 0 or unknown tags.
  const AggregateFunction* FindByTag(uint8_t tag) const;
  // Registration order.
  std::vector<const AggregateFunction*> All() const;

 private:
  AggregateRegistry();
  std::vector<std::unique_ptr<AggregateFunction>> fns_;
};

// Shorthand for AggregateRegistry::Global().Find(name).
const AggregateFunction* FindAggregate(const std::string& name);

}  // namespace seaweed::db
