#include "db/batch_kernels.h"

namespace seaweed::db {

void SelAll(uint32_t start, uint32_t len, SelVector* out) {
  for (uint32_t i = 0; i < len; ++i) out->rows[i] = start + i;
  out->count = len;
}

void SelUnion(const SelVector& a, const SelVector& b, SelVector* out) {
  uint32_t i = 0, j = 0, n = 0;
  while (i < a.count && j < b.count) {
    const uint32_t ra = a.rows[i];
    const uint32_t rb = b.rows[j];
    if (ra < rb) {
      out->rows[n++] = ra;
      ++i;
    } else if (rb < ra) {
      out->rows[n++] = rb;
      ++j;
    } else {
      out->rows[n++] = ra;
      ++i;
      ++j;
    }
  }
  while (i < a.count) out->rows[n++] = a.rows[i++];
  while (j < b.count) out->rows[n++] = b.rows[j++];
  out->count = n;
}

}  // namespace seaweed::db
