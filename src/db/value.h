// Typed scalar values for the relational engine.
//
// Seaweed's data model (§2 of the paper) is relational with a fixed schema
// per application. Three physical types cover the Anemone schema and the
// query subset: 64-bit integers (also used for timestamps as Unix seconds),
// doubles, and strings.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.h"
#include "common/serialize.h"

namespace seaweed::db {

enum class ColumnType : uint8_t { kInt64 = 0, kDouble = 1, kString = 2 };

const char* ColumnTypeName(ColumnType t);

class Value {
 public:
  Value() : v_(int64_t{0}) {}
  explicit Value(int64_t v) : v_(v) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}

  ColumnType type() const {
    return static_cast<ColumnType>(v_.index());
  }
  bool is_int64() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }

  int64_t AsInt64() const { return std::get<int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }

  // Numeric view: int64 and double both convert; strings fail.
  Result<double> ToNumeric() const;

  // Three-way comparison for same-kind values; numeric kinds compare
  // cross-type (int vs double). Comparing a string against a numeric is an
  // error surfaced as InvalidArgument at bind time, not here.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }

  std::string ToString() const;

  // Binary encoding: 1-byte type tag + payload.
  void Encode(Writer& w) const;
  static Result<Value> Decode(Reader& r);

  // Strict ordering usable as a map key (orders by type, then value).
  bool operator<(const Value& other) const {
    if (v_.index() != other.v_.index()) return v_.index() < other.v_.index();
    return Compare(other) < 0;
  }

 private:
  std::variant<int64_t, double, std::string> v_;
};

}  // namespace seaweed::db
