#include "db/query_exec.h"

#include <algorithm>

#include "common/logging.h"

namespace seaweed::db {

Result<int> CompiledPredicate::BindNode(const PredicatePtr& pred,
                                        const Table& table,
                                        std::vector<Node>* nodes) {
  Node node;
  node.kind = pred->kind;
  switch (pred->kind) {
    case Predicate::Kind::kTrue:
      break;
    case Predicate::Kind::kCompare: {
      SEAWEED_ASSIGN_OR_RETURN(int col,
                               table.schema().RequireColumn(pred->column));
      node.column_index = col;
      node.column_type = table.schema().column(static_cast<size_t>(col)).type;
      node.op = pred->op;
      const Value& lit = pred->literal;
      if (node.column_type == ColumnType::kString) {
        if (!lit.is_string()) {
          return Status::InvalidArgument(
              "numeric literal compared against string column " +
              pred->column);
        }
        if (pred->op != CompareOp::kEq && pred->op != CompareOp::kNe) {
          // Range comparison on strings: fall back to lexicographic compare
          // through the dictionary (slow path flagged by code -2).
          node.string_code = -2;
        } else {
          node.string_code =
              table.column(static_cast<size_t>(col)).DictCode(lit.AsString());
        }
        // Keep the raw string for the slow path via double_literal? No —
        // store it in a side table below.
        node.literal_is_int = false;
        node.int_literal = 0;
      } else {
        if (lit.is_string()) {
          return Status::InvalidArgument(
              "string literal compared against numeric column " +
              pred->column);
        }
        if (lit.is_int64()) {
          node.int_literal = lit.AsInt64();
          node.double_literal = static_cast<double>(lit.AsInt64());
          node.literal_is_int = true;
        } else {
          node.double_literal = lit.AsDouble();
          node.literal_is_int = false;
        }
      }
      break;
    }
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr: {
      SEAWEED_ASSIGN_OR_RETURN(int l, BindNode(pred->left, table, nodes));
      SEAWEED_ASSIGN_OR_RETURN(int r, BindNode(pred->right, table, nodes));
      node.left = l;
      node.right = r;
      break;
    }
  }
  nodes->push_back(node);
  return static_cast<int>(nodes->size()) - 1;
}

Result<CompiledPredicate> CompiledPredicate::Bind(const PredicatePtr& pred,
                                                  const Table& table) {
  CompiledPredicate cp;
  // String range comparisons need the literal text; stash literals in a
  // parallel pass. To keep Node POD-small we disallow the rare string-range
  // case instead (Anemone queries never use it).
  // (A cleaner lift would store std::string in Node; rejected for cache
  // friendliness on the hot filter loop.)
  std::vector<Node> nodes;
  SEAWEED_ASSIGN_OR_RETURN(int root, BindNode(pred, table, &nodes));
  for (const Node& n : nodes) {
    if (n.kind == Predicate::Kind::kCompare && n.string_code == -2) {
      return Status::NotImplemented(
          "range comparison on string column is not supported");
    }
  }
  cp.nodes_ = std::move(nodes);
  cp.root_ = root;
  return cp;
}

bool CompiledPredicate::EvalNode(int idx, const Table& table,
                                 size_t row) const {
  const Node& n = nodes_[static_cast<size_t>(idx)];
  switch (n.kind) {
    case Predicate::Kind::kTrue:
      return true;
    case Predicate::Kind::kAnd:
      return EvalNode(n.left, table, row) && EvalNode(n.right, table, row);
    case Predicate::Kind::kOr:
      return EvalNode(n.left, table, row) || EvalNode(n.right, table, row);
    case Predicate::Kind::kCompare: {
      const Column& col = table.column(static_cast<size_t>(n.column_index));
      switch (n.column_type) {
        case ColumnType::kInt64: {
          int64_t v = col.Int64At(row);
          if (n.literal_is_int) {
            int cmp = (v < n.int_literal) ? -1 : (v > n.int_literal ? 1 : 0);
            return EvalCompare(n.op, cmp);
          }
          double d = static_cast<double>(v);
          int cmp =
              (d < n.double_literal) ? -1 : (d > n.double_literal ? 1 : 0);
          return EvalCompare(n.op, cmp);
        }
        case ColumnType::kDouble: {
          double v = col.DoubleAt(row);
          int cmp =
              (v < n.double_literal) ? -1 : (v > n.double_literal ? 1 : 0);
          return EvalCompare(n.op, cmp);
        }
        case ColumnType::kString: {
          // Equality/inequality against a pre-resolved dictionary code.
          bool eq = n.string_code >= 0 &&
                    col.StringCodeAt(row) ==
                        static_cast<uint32_t>(n.string_code);
          return n.op == CompareOp::kEq ? eq : !eq;
        }
      }
      return false;
    }
  }
  return false;
}

bool CompiledPredicate::Matches(const Table& table, size_t row) const {
  return EvalNode(root_, table, row);
}

void AggState::Merge(const AggState& other) {
  sum += other.sum;
  count += other.count;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
}

Result<Value> AggState::Final(AggFunc func) const {
  switch (func) {
    case AggFunc::kCount:
      return Value(count);
    case AggFunc::kSum:
      // SUM over the Anemone columns is integral; keep double to avoid
      // overflow at global scale but round for integer-like outputs.
      return Value(sum);
    case AggFunc::kAvg:
      if (count == 0) return Status::NotFound("AVG over empty input");
      return Value(sum / static_cast<double>(count));
    case AggFunc::kMin:
      if (count == 0) return Status::NotFound("MIN over empty input");
      return Value(min);
    case AggFunc::kMax:
      if (count == 0) return Status::NotFound("MAX over empty input");
      return Value(max);
  }
  return Status::Internal("bad AggFunc");
}

void AggState::Serialize(Writer* w) const {
  w->PutDouble(sum);
  w->PutI64(count);
  w->PutDouble(min);
  w->PutDouble(max);
}

Result<AggState> AggState::Deserialize(Reader* r) {
  AggState s;
  SEAWEED_ASSIGN_OR_RETURN(s.sum, r->GetDouble());
  SEAWEED_ASSIGN_OR_RETURN(s.count, r->GetI64());
  SEAWEED_ASSIGN_OR_RETURN(s.min, r->GetDouble());
  SEAWEED_ASSIGN_OR_RETURN(s.max, r->GetDouble());
  return s;
}

void AggregateResult::Merge(const AggregateResult& other) {
  if (states.empty()) {
    states = other.states;
  } else if (!other.states.empty()) {
    SEAWEED_CHECK_MSG(states.size() == other.states.size(),
                      "merging results of different arity");
    for (size_t i = 0; i < states.size(); ++i) {
      states[i].Merge(other.states[i]);
    }
  }
  for (const auto& [key, other_states] : other.groups) {
    auto& mine = GroupStates(key, other_states.size());
    SEAWEED_CHECK_MSG(mine.size() == other_states.size(),
                      "merging groups of different arity");
    for (size_t i = 0; i < mine.size(); ++i) {
      mine[i].Merge(other_states[i]);
    }
  }
  rows_matched += other.rows_matched;
  endsystems += other.endsystems;
}

std::vector<AggState>& AggregateResult::GroupStates(const Value& key,
                                                    size_t arity) {
  auto it = std::lower_bound(
      groups.begin(), groups.end(), key,
      [](const auto& entry, const Value& k) { return entry.first < k; });
  if (it == groups.end() || !(it->first == key)) {
    it = groups.insert(it, {key, std::vector<AggState>(arity)});
  }
  return it->second;
}

const std::vector<AggState>* AggregateResult::FindGroup(
    const Value& key) const {
  auto it = std::lower_bound(
      groups.begin(), groups.end(), key,
      [](const auto& entry, const Value& k) { return entry.first < k; });
  if (it == groups.end() || !(it->first == key)) return nullptr;
  return &it->second;
}

void AggregateResult::Serialize(Writer* w) const {
  w->PutVarint(states.size());
  for (const auto& s : states) s.Serialize(w);
  w->PutVarint(groups.size());
  for (const auto& [key, group_states] : groups) {
    key.Serialize(w);
    w->PutVarint(group_states.size());
    for (const auto& s : group_states) s.Serialize(w);
  }
  w->PutI64(rows_matched);
  w->PutI64(endsystems);
}

Result<AggregateResult> AggregateResult::Deserialize(Reader* r) {
  AggregateResult out;
  SEAWEED_ASSIGN_OR_RETURN(uint64_t n, r->GetVarint());
  if (n > 1024) return Status::ParseError("implausible aggregate arity");
  out.states.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    SEAWEED_ASSIGN_OR_RETURN(AggState s, AggState::Deserialize(r));
    out.states.push_back(s);
  }
  SEAWEED_ASSIGN_OR_RETURN(uint64_t ng, r->GetVarint());
  if (ng > 1000000) return Status::ParseError("implausible group count");
  for (uint64_t g = 0; g < ng; ++g) {
    SEAWEED_ASSIGN_OR_RETURN(Value key, Value::Deserialize(r));
    SEAWEED_ASSIGN_OR_RETURN(uint64_t arity, r->GetVarint());
    if (arity > 1024) return Status::ParseError("implausible group arity");
    std::vector<AggState> group_states;
    group_states.reserve(arity);
    for (uint64_t i = 0; i < arity; ++i) {
      SEAWEED_ASSIGN_OR_RETURN(AggState s, AggState::Deserialize(r));
      group_states.push_back(s);
    }
    out.groups.emplace_back(std::move(key), std::move(group_states));
  }
  SEAWEED_ASSIGN_OR_RETURN(out.rows_matched, r->GetI64());
  SEAWEED_ASSIGN_OR_RETURN(out.endsystems, r->GetI64());
  return out;
}

size_t AggregateResult::SerializedBytes() const {
  Writer w;
  Serialize(&w);
  return w.size();
}

Result<AggregateResult> ExecuteAggregate(const Table& table,
                                         const SelectQuery& query) {
  if (!query.IsAggregateOnly()) {
    return Status::InvalidArgument(
        "distributed execution requires aggregate-only select list");
  }
  SEAWEED_ASSIGN_OR_RETURN(CompiledPredicate pred,
                           CompiledPredicate::Bind(query.where, table));

  // Resolve aggregate input columns.
  struct AggInput {
    AggFunc func;
    int column = -1;  // -1 for COUNT(*) or the bare group-by column
    bool is_group_column = false;
    ColumnType type = ColumnType::kInt64;
  };
  std::vector<AggInput> inputs;
  inputs.reserve(query.items.size());
  for (const auto& item : query.items) {
    AggInput in;
    in.func = item.func;
    if (!item.is_aggregate) {
      // IsAggregateOnly() guarantees this is the GROUP BY column.
      in.is_group_column = true;
      inputs.push_back(in);
      continue;
    }
    if (!item.column.empty()) {
      SEAWEED_ASSIGN_OR_RETURN(in.column,
                               table.schema().RequireColumn(item.column));
      in.type = table.schema().column(static_cast<size_t>(in.column)).type;
      if (in.type == ColumnType::kString && item.func != AggFunc::kCount) {
        return Status::InvalidArgument("cannot " +
                                       std::string(AggFuncName(item.func)) +
                                       " a string column");
      }
    } else if (item.func != AggFunc::kCount) {
      return Status::InvalidArgument("only COUNT may take '*'");
    }
    inputs.push_back(in);
  }

  int group_column = -1;
  if (!query.group_by.empty()) {
    SEAWEED_ASSIGN_OR_RETURN(group_column,
                             table.schema().RequireColumn(query.group_by));
  }

  AggregateResult result;
  result.states.resize(query.items.size());
  result.endsystems = 1;
  const size_t n = table.num_rows();
  const size_t arity = query.items.size();
  for (size_t row = 0; row < n; ++row) {
    if (!pred.Matches(table, row)) continue;
    ++result.rows_matched;
    std::vector<AggState>* group = nullptr;
    if (group_column >= 0) {
      Value key =
          table.column(static_cast<size_t>(group_column)).ValueAt(row);
      group = &result.GroupStates(key, arity);
    }
    for (size_t i = 0; i < inputs.size(); ++i) {
      const AggInput& in = inputs[i];
      if (in.is_group_column) continue;  // rendered from the group key
      AggState& state = group ? (*group)[i] : result.states[i];
      if (in.column < 0 || in.type == ColumnType::kString) {
        state.AddCountOnly();
        if (group) result.states[i].AddCountOnly();
        continue;
      }
      const Column& col = table.column(static_cast<size_t>(in.column));
      double v = in.type == ColumnType::kInt64
                     ? static_cast<double>(col.Int64At(row))
                     : col.DoubleAt(row);
      state.Add(v);
      if (group) result.states[i].Add(v);
    }
  }
  return result;
}

Result<int64_t> CountMatching(const Table& table, const SelectQuery& query) {
  SEAWEED_ASSIGN_OR_RETURN(CompiledPredicate pred,
                           CompiledPredicate::Bind(query.where, table));
  int64_t n = 0;
  const size_t rows = table.num_rows();
  for (size_t row = 0; row < rows; ++row) {
    if (pred.Matches(table, row)) ++n;
  }
  return n;
}

Result<RowSet> ExecuteSelect(const Table& table, const SelectQuery& query,
                             size_t limit) {
  SEAWEED_ASSIGN_OR_RETURN(CompiledPredicate pred,
                           CompiledPredicate::Bind(query.where, table));
  RowSet out;
  std::vector<int> cols;
  bool star = false;
  for (const auto& item : query.items) {
    if (item.is_aggregate) {
      return Status::InvalidArgument(
          "mixed aggregate/projection select list is not supported");
    }
    if (item.column.empty()) {
      star = true;
    } else {
      SEAWEED_ASSIGN_OR_RETURN(int c,
                               table.schema().RequireColumn(item.column));
      cols.push_back(c);
    }
  }
  if (star) {
    cols.clear();
    for (size_t i = 0; i < table.num_columns(); ++i) {
      cols.push_back(static_cast<int>(i));
    }
  }
  for (int c : cols) {
    out.column_names.push_back(table.schema().column(static_cast<size_t>(c)).name);
  }
  const size_t n = table.num_rows();
  for (size_t row = 0; row < n && out.rows.size() < limit; ++row) {
    if (!pred.Matches(table, row)) continue;
    std::vector<Value> vals;
    vals.reserve(cols.size());
    for (int c : cols) {
      vals.push_back(table.column(static_cast<size_t>(c)).ValueAt(row));
    }
    out.rows.push_back(std::move(vals));
  }
  return out;
}

}  // namespace seaweed::db
