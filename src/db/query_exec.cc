#include "db/query_exec.h"

#include <algorithm>

#include "common/logging.h"

namespace seaweed::db {

namespace {

// GROUP BY on a dictionary column uses dense array-indexed accumulators
// sized by dict_size(); above this cardinality the executor falls back to
// the Value-keyed path to bound memory (dict_size * arity * sizeof(AggState)
// at 64k is a few MiB worst case).
constexpr size_t kDenseGroupMaxDict = size_t{1} << 16;

}  // namespace

// ---------------------------------------------------------------------------
// Scalar reference predicate
// ---------------------------------------------------------------------------

Result<int> CompiledPredicate::BindNode(const PredicatePtr& pred,
                                        const Table& table,
                                        std::vector<Node>* nodes) {
  Node node;
  node.kind = pred->kind;
  switch (pred->kind) {
    case Predicate::Kind::kTrue:
      break;
    case Predicate::Kind::kCompare: {
      SEAWEED_ASSIGN_OR_RETURN(int col,
                               table.schema().RequireColumn(pred->column));
      node.column_index = col;
      node.column_type = table.schema().column(static_cast<size_t>(col)).type;
      node.op = pred->op;
      const Value& lit = pred->literal;
      if (node.column_type == ColumnType::kString) {
        if (!lit.is_string()) {
          return Status::InvalidArgument(
              "numeric literal compared against string column " +
              pred->column);
        }
        if (pred->op != CompareOp::kEq && pred->op != CompareOp::kNe) {
          // Range comparison on strings: fall back to lexicographic compare
          // through the dictionary (slow path flagged by code -2).
          node.string_code = -2;
        } else {
          node.string_code =
              table.column(static_cast<size_t>(col)).DictCode(lit.AsString());
        }
        node.literal_is_int = false;
        node.int_literal = 0;
      } else {
        if (lit.is_string()) {
          return Status::InvalidArgument(
              "string literal compared against numeric column " +
              pred->column);
        }
        if (lit.is_int64()) {
          node.int_literal = lit.AsInt64();
          node.double_literal = static_cast<double>(lit.AsInt64());
          node.literal_is_int = true;
        } else {
          node.double_literal = lit.AsDouble();
          node.literal_is_int = false;
        }
      }
      break;
    }
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr: {
      SEAWEED_ASSIGN_OR_RETURN(int l, BindNode(pred->left, table, nodes));
      SEAWEED_ASSIGN_OR_RETURN(int r, BindNode(pred->right, table, nodes));
      node.left = l;
      node.right = r;
      break;
    }
  }
  nodes->push_back(node);
  return static_cast<int>(nodes->size()) - 1;
}

Result<CompiledPredicate> CompiledPredicate::Bind(const PredicatePtr& pred,
                                                  const Table& table) {
  CompiledPredicate cp;
  // String range comparisons need the literal text; to keep Node POD-small
  // we disallow the rare string-range case instead (Anemone queries never
  // use it).
  std::vector<Node> nodes;
  SEAWEED_ASSIGN_OR_RETURN(int root, BindNode(pred, table, &nodes));
  for (const Node& n : nodes) {
    if (n.kind == Predicate::Kind::kCompare && n.string_code == -2) {
      return Status::NotImplemented(
          "range comparison on string column is not supported");
    }
  }
  cp.nodes_ = std::move(nodes);
  cp.root_ = root;
  return cp;
}

bool CompiledPredicate::EvalNode(int idx, const Table& table,
                                 size_t row) const {
  const Node& n = nodes_[static_cast<size_t>(idx)];
  switch (n.kind) {
    case Predicate::Kind::kTrue:
      return true;
    case Predicate::Kind::kAnd:
      return EvalNode(n.left, table, row) && EvalNode(n.right, table, row);
    case Predicate::Kind::kOr:
      return EvalNode(n.left, table, row) || EvalNode(n.right, table, row);
    case Predicate::Kind::kCompare: {
      const Column& col = table.column(static_cast<size_t>(n.column_index));
      switch (n.column_type) {
        case ColumnType::kInt64: {
          int64_t v = col.Int64At(row);
          if (n.literal_is_int) {
            int cmp = (v < n.int_literal) ? -1 : (v > n.int_literal ? 1 : 0);
            return EvalCompare(n.op, cmp);
          }
          double d = static_cast<double>(v);
          int cmp =
              (d < n.double_literal) ? -1 : (d > n.double_literal ? 1 : 0);
          return EvalCompare(n.op, cmp);
        }
        case ColumnType::kDouble: {
          double v = col.DoubleAt(row);
          int cmp =
              (v < n.double_literal) ? -1 : (v > n.double_literal ? 1 : 0);
          return EvalCompare(n.op, cmp);
        }
        case ColumnType::kString: {
          // Equality/inequality against a pre-resolved dictionary code.
          bool eq = n.string_code >= 0 &&
                    col.StringCodeAt(row) ==
                        static_cast<uint32_t>(n.string_code);
          return n.op == CompareOp::kEq ? eq : !eq;
        }
      }
      return false;
    }
  }
  return false;
}

bool CompiledPredicate::Matches(const Table& table, size_t row) const {
  return EvalNode(root_, table, row);
}

// ---------------------------------------------------------------------------
// Batch predicate
// ---------------------------------------------------------------------------

Result<int> BatchPredicate::BindNode(const PredicatePtr& pred,
                                     const Table& table,
                                     std::vector<Node>* nodes) {
  Node node;
  node.kind = pred->kind;
  switch (pred->kind) {
    case Predicate::Kind::kTrue:
      break;
    case Predicate::Kind::kCompare: {
      SEAWEED_ASSIGN_OR_RETURN(int col,
                               table.schema().RequireColumn(pred->column));
      node.column_index = col;
      node.column_type = table.schema().column(static_cast<size_t>(col)).type;
      node.op = pred->op;
      const Value& lit = pred->literal;
      if (node.column_type == ColumnType::kString) {
        if (!lit.is_string()) {
          return Status::InvalidArgument(
              "numeric literal compared against string column " +
              pred->column);
        }
        if (pred->op != CompareOp::kEq && pred->op != CompareOp::kNe) {
          return Status::NotImplemented(
              "range comparison on string column is not supported");
        }
        node.string_literal = lit.AsString();
        node.string_code =
            table.column(static_cast<size_t>(col)).DictCode(node.string_literal);
        node.literal_is_int = false;
      } else {
        if (lit.is_string()) {
          return Status::InvalidArgument(
              "string literal compared against numeric column " +
              pred->column);
        }
        if (lit.is_int64()) {
          node.int_literal = lit.AsInt64();
          node.double_literal = static_cast<double>(lit.AsInt64());
          node.literal_is_int = true;
        } else {
          node.double_literal = lit.AsDouble();
          node.literal_is_int = false;
        }
      }
      break;
    }
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr: {
      SEAWEED_ASSIGN_OR_RETURN(int l, BindNode(pred->left, table, nodes));
      SEAWEED_ASSIGN_OR_RETURN(int r, BindNode(pred->right, table, nodes));
      node.left = l;
      node.right = r;
      break;
    }
  }
  nodes->push_back(node);
  return static_cast<int>(nodes->size()) - 1;
}

Result<BatchPredicate> BatchPredicate::Bind(const PredicatePtr& pred,
                                            const Table& table) {
  BatchPredicate bp;
  std::vector<Node> nodes;
  SEAWEED_ASSIGN_OR_RETURN(int root, BindNode(pred, table, &nodes));
  bp.nodes_ = std::move(nodes);
  bp.root_ = root;
  return bp;
}

void BatchPredicate::EvalNode(int idx, const Table& table, uint32_t start,
                              uint32_t len, const SelVector* in,
                              SelVector* out) const {
  out->Clear();
  const Node& n = nodes_[static_cast<size_t>(idx)];
  switch (n.kind) {
    case Predicate::Kind::kTrue: {
      if (in == nullptr) {
        SelAll(start, len, out);
      } else {
        *out = *in;
      }
      return;
    }
    case Predicate::Kind::kAnd: {
      // Conjunction = kernel composition: the right side only ever touches
      // rows the left side selected.
      SelVector tmp;
      EvalNode(n.left, table, start, len, in, &tmp);
      EvalNode(n.right, table, start, len, &tmp, out);
      return;
    }
    case Predicate::Kind::kOr: {
      SelVector a, b;
      EvalNode(n.left, table, start, len, in, &a);
      EvalNode(n.right, table, start, len, in, &b);
      SelUnion(a, b, out);
      return;
    }
    case Predicate::Kind::kCompare: {
      const Column& col = table.column(static_cast<size_t>(n.column_index));
      switch (n.column_type) {
        case ColumnType::kInt64: {
          const int64_t* p = col.ints().data();
          if (n.literal_is_int) {
            if (in == nullptr) {
              FilterDenseOp(p, start, len, n.int_literal, n.op, out);
            } else {
              FilterSelOp(p, *in, n.int_literal, n.op, out);
            }
          } else {
            if (in == nullptr) {
              FilterDenseOp(p, start, len, n.double_literal, n.op, out);
            } else {
              FilterSelOp(p, *in, n.double_literal, n.op, out);
            }
          }
          return;
        }
        case ColumnType::kDouble: {
          const double* p = col.doubles().data();
          if (in == nullptr) {
            FilterDenseOp(p, start, len, n.double_literal, n.op, out);
          } else {
            FilterSelOp(p, *in, n.double_literal, n.op, out);
          }
          return;
        }
        case ColumnType::kString: {
          // Dictionary-coded equality: a uint32_t compare. A literal absent
          // from the dictionary matches nothing (=) or everything (!=).
          if (n.string_code < 0) {
            if (n.op == CompareOp::kNe) {
              if (in == nullptr) {
                SelAll(start, len, out);
              } else {
                *out = *in;
              }
            }
            return;  // kEq: empty selection
          }
          const uint32_t* p = col.codes().data();
          const uint32_t code = static_cast<uint32_t>(n.string_code);
          if (in == nullptr) {
            FilterDenseOp(p, start, len, code, n.op, out);
          } else {
            FilterSelOp(p, *in, code, n.op, out);
          }
          return;
        }
      }
      return;
    }
  }
}

void BatchPredicate::FilterBatch(const Table& table, uint32_t start,
                                 uint32_t len, SelVector* out) const {
  SEAWEED_DCHECK(len <= kBatchSize);
  EvalNode(root_, table, start, len, nullptr, out);
}

bool BatchPredicate::CompatibleWith(const Table& table) const {
  for (const Node& n : nodes_) {
    if (n.kind != Predicate::Kind::kCompare) continue;
    const size_t ci = static_cast<size_t>(n.column_index);
    if (ci >= table.num_columns()) return false;
    if (table.schema().column(ci).type != n.column_type) return false;
    if (n.column_type == ColumnType::kString &&
        table.column(ci).DictCode(n.string_literal) != n.string_code) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Aggregate states and results
// ---------------------------------------------------------------------------

void AggState::Merge(const AggState& other) {
  sum += other.sum;
  count += other.count;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  if (other.sketch) {
    if (sketch == nullptr) {
      // Group states created by AggregateResult::Merge start sketchless;
      // adopt the incoming sketch so merge stays closed over states.
      sketch = other.sketch->Clone();
    } else {
      sketch->Merge(*other.sketch);
    }
  }
}

bool AggState::operator==(const AggState& other) const {
  if (sum != other.sum || count != other.count || min != other.min ||
      max != other.max) {
    return false;
  }
  if ((sketch == nullptr) != (other.sketch == nullptr)) return false;
  return sketch == nullptr || sketch->Equals(*other.sketch);
}

void AggState::Encode(Writer& w) const {
  // Tag byte first: 0 = exact quad only, nonzero = a sketch payload of
  // that type follows the quad (see db/sketch.h for the tag registry).
  w.PutU8(sketch ? sketch->tag() : kStateTagExact);
  w.PutDouble(sum);
  w.PutI64(count);
  w.PutDouble(min);
  w.PutDouble(max);
  if (sketch) sketch->Encode(w);
}

Result<AggState> AggState::Decode(Reader& r) {
  AggState s;
  SEAWEED_ASSIGN_OR_RETURN(uint8_t tag, r.GetU8());
  SEAWEED_ASSIGN_OR_RETURN(s.sum, r.GetDouble());
  SEAWEED_ASSIGN_OR_RETURN(s.count, r.GetI64());
  SEAWEED_ASSIGN_OR_RETURN(s.min, r.GetDouble());
  SEAWEED_ASSIGN_OR_RETURN(s.max, r.GetDouble());
  if (tag != kStateTagExact) {
    SEAWEED_ASSIGN_OR_RETURN(s.sketch, DecodeSketchState(tag, r));
  }
  return s;
}

void AggregateResult::Merge(const AggregateResult& other) {
  if (states.empty()) {
    states = other.states;
  } else if (!other.states.empty()) {
    SEAWEED_CHECK_MSG(states.size() == other.states.size(),
                      "merging results of different arity");
    for (size_t i = 0; i < states.size(); ++i) {
      states[i].Merge(other.states[i]);
    }
  }
  for (const auto& [key, other_states] : other.groups) {
    auto& mine = GroupStates(key, other_states.size());
    SEAWEED_CHECK_MSG(mine.size() == other_states.size(),
                      "merging groups of different arity");
    for (size_t i = 0; i < mine.size(); ++i) {
      mine[i].Merge(other_states[i]);
    }
  }
  rows_matched += other.rows_matched;
  endsystems += other.endsystems;
}

std::vector<AggState>& AggregateResult::GroupStates(const Value& key,
                                                    size_t arity) {
  auto it = std::lower_bound(
      groups.begin(), groups.end(), key,
      [](const auto& entry, const Value& k) { return entry.first < k; });
  if (it == groups.end() || !(it->first == key)) {
    it = groups.insert(it, {key, std::vector<AggState>(arity)});
  }
  return it->second;
}

const std::vector<AggState>* AggregateResult::FindGroup(
    const Value& key) const {
  auto it = std::lower_bound(
      groups.begin(), groups.end(), key,
      [](const auto& entry, const Value& k) { return entry.first < k; });
  if (it == groups.end() || !(it->first == key)) return nullptr;
  return &it->second;
}

void AggregateResult::Encode(Writer& w) const {
  w.PutVarint(states.size());
  for (const auto& s : states) s.Encode(w);
  w.PutVarint(groups.size());
  for (const auto& [key, group_states] : groups) {
    key.Encode(w);
    w.PutVarint(group_states.size());
    for (const auto& s : group_states) s.Encode(w);
  }
  w.PutI64(rows_matched);
  w.PutI64(endsystems);
}

Result<AggregateResult> AggregateResult::Decode(Reader& r) {
  AggregateResult out;
  SEAWEED_ASSIGN_OR_RETURN(uint64_t n, r.GetVarint());
  if (n > 1024) return Status::ParseError("implausible aggregate arity");
  out.states.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    SEAWEED_ASSIGN_OR_RETURN(AggState s, AggState::Decode(r));
    out.states.push_back(std::move(s));
  }
  SEAWEED_ASSIGN_OR_RETURN(uint64_t ng, r.GetVarint());
  if (ng > 1000000) return Status::ParseError("implausible group count");
  for (uint64_t g = 0; g < ng; ++g) {
    SEAWEED_ASSIGN_OR_RETURN(Value key, Value::Decode(r));
    SEAWEED_ASSIGN_OR_RETURN(uint64_t arity, r.GetVarint());
    if (arity > 1024) return Status::ParseError("implausible group arity");
    std::vector<AggState> group_states;
    group_states.reserve(arity);
    for (uint64_t i = 0; i < arity; ++i) {
      SEAWEED_ASSIGN_OR_RETURN(AggState s, AggState::Decode(r));
      group_states.push_back(std::move(s));
    }
    out.groups.emplace_back(std::move(key), std::move(group_states));
  }
  SEAWEED_ASSIGN_OR_RETURN(out.rows_matched, r.GetI64());
  SEAWEED_ASSIGN_OR_RETURN(out.endsystems, r.GetI64());
  return out;
}

size_t AggregateResult::EncodedBytes() const {
  Writer w;
  Encode(w);
  return w.size();
}

bool AggregateResult::HasSketchStates() const {
  for (const auto& s : states) {
    if (s.sketch) return true;
  }
  for (const auto& [key, group_states] : groups) {
    for (const auto& s : group_states) {
      if (s.sketch) return true;
    }
  }
  return false;
}

size_t AggregateResult::SketchStateBytes() const {
  size_t total = 0;
  for (const auto& s : states) {
    if (s.sketch) total += s.sketch->EncodedBytes();
  }
  for (const auto& [key, group_states] : groups) {
    for (const auto& s : group_states) {
      if (s.sketch) total += s.sketch->EncodedBytes();
    }
  }
  return total;
}

// ---------------------------------------------------------------------------
// Compiled query (batch engine)
// ---------------------------------------------------------------------------

Result<CompiledQuery> CompiledQuery::Bind(const Table& table,
                                          const SelectQuery& query) {
  if (!query.IsAggregateOnly()) {
    return Status::InvalidArgument(
        "distributed execution requires aggregate-only select list");
  }
  CompiledQuery cq;
  SEAWEED_ASSIGN_OR_RETURN(cq.pred_, BatchPredicate::Bind(query.where, table));

  cq.inputs_.reserve(query.items.size());
  for (const auto& item : query.items) {
    AggInput in;
    in.func = item.func;
    in.param = item.EffectiveParam();
    if (!item.is_aggregate) {
      // IsAggregateOnly() guarantees this is the GROUP BY column.
      in.is_group_column = true;
      cq.inputs_.push_back(in);
      continue;
    }
    const AggDescriptor& desc = item.func->descriptor();
    if (!item.column.empty()) {
      SEAWEED_ASSIGN_OR_RETURN(in.column,
                               table.schema().RequireColumn(item.column));
      in.type = table.schema().column(static_cast<size_t>(in.column)).type;
      if (in.type == ColumnType::kString && !desc.allows_string) {
        return Status::InvalidArgument("cannot " + item.func->name() +
                                       " a string column");
      }
    } else if (!desc.allows_star) {
      return Status::InvalidArgument("only COUNT may take '*'");
    }
    SEAWEED_RETURN_NOT_OK(item.func->ValidateParam(in.param));
    cq.any_sketch_ = cq.any_sketch_ || item.func->IsSketch();
    cq.inputs_.push_back(in);
  }

  if (!query.group_by.empty()) {
    SEAWEED_ASSIGN_OR_RETURN(cq.group_column_,
                             table.schema().RequireColumn(query.group_by));
    cq.group_type_ =
        table.schema().column(static_cast<size_t>(cq.group_column_)).type;
  }
  cq.num_columns_ = table.num_columns();
  return cq;
}

bool CompiledQuery::CompatibleWith(const Table& table) const {
  if (table.num_columns() != num_columns_) return false;
  if (!pred_.CompatibleWith(table)) return false;
  for (const AggInput& in : inputs_) {
    if (in.column < 0) continue;
    const size_t ci = static_cast<size_t>(in.column);
    if (ci >= table.num_columns()) return false;
    if (table.schema().column(ci).type != in.type) return false;
  }
  if (group_column_ >= 0) {
    const size_t gi = static_cast<size_t>(group_column_);
    if (gi >= table.num_columns()) return false;
    if (table.schema().column(gi).type != group_type_) return false;
  }
  return true;
}

void CompiledQuery::AccumulateUngrouped(const Table& table,
                                        const SelVector& sel,
                                        AggregateResult* result) const {
  for (size_t i = 0; i < inputs_.size(); ++i) {
    const AggInput& in = inputs_[i];
    in.func->AccumulateBatch(table, in.column, sel, result->states[i]);
  }
}

void CompiledQuery::AccumulateUngroupedDense(const Table& table,
                                             uint32_t start, uint32_t len,
                                             AggregateResult* result) const {
  for (size_t i = 0; i < inputs_.size(); ++i) {
    const AggInput& in = inputs_[i];
    in.func->AccumulateDense(table, in.column, start, len, result->states[i]);
  }
}

Result<AggregateResult> CompiledQuery::Execute(const Table& table) const {
  AggregateCursor cursor(this, &table);
  cursor.Step(std::numeric_limits<size_t>::max());
  return cursor.Take();
}

// ---------------------------------------------------------------------------
// Resumable cursor (time-sliced execution)
// ---------------------------------------------------------------------------

AggregateCursor::AggregateCursor(const CompiledQuery* plan, const Table* table)
    : plan_(plan), table_(table) {
  result_.states.resize(plan_->inputs_.size());
  result_.endsystems = 1;
  total_rows_ = table_->num_rows();
  const size_t arity = plan_->inputs_.size();
  for (size_t i = 0; i < arity; ++i) {
    const CompiledQuery::AggInput& in = plan_->inputs_[i];
    if (in.func != nullptr) in.func->InitState(result_.states[i], in.param);
  }

  group_col_ = plan_->group_column_ >= 0
                   ? &table_->column(static_cast<size_t>(plan_->group_column_))
                   : nullptr;
  // Sketch states don't fit the flat dense-accumulator array (per-code
  // sketches would be allocated for absent groups); sketch queries take
  // the Value-keyed path, exact queries keep the fast path unchanged.
  dense_group_ = group_col_ != nullptr &&
                 plan_->group_type_ == ColumnType::kString &&
                 group_col_->dict_size() <= kDenseGroupMaxDict &&
                 !plan_->any_sketch_;
  // Dense GROUP BY accumulators: one AggState per (dict code, select item)
  // plus a per-code matched-row count deciding which groups exist.
  if (dense_group_) {
    dense_states_.resize(group_col_->dict_size() * arity);
    dense_rows_.resize(group_col_->dict_size(), 0);
    group_codes_ = group_col_->codes().data();
  }
  no_filter_ = plan_->pred_.always_true();
}

bool AggregateCursor::Step(size_t max_batches) {
  const Table& table = *table_;
  const size_t arity = plan_->inputs_.size();
  for (size_t b = 0; b < max_batches && next_row_ < total_rows_; ++b) {
    const uint32_t start = static_cast<uint32_t>(next_row_);
    const uint32_t len = static_cast<uint32_t>(
        std::min<size_t>(kBatchSize, total_rows_ - next_row_));
    next_row_ += len;
    if (no_filter_ && group_col_ == nullptr) {
      result_.rows_matched += len;
      plan_->AccumulateUngroupedDense(table, start, len, &result_);
      continue;
    }
    if (no_filter_) {
      SelAll(start, len, &sel_);
    } else {
      plan_->pred_.FilterBatch(table, start, len, &sel_);
    }
    result_.rows_matched += sel_.count;
    if (sel_.count == 0) continue;

    if (group_col_ == nullptr) {
      plan_->AccumulateUngrouped(table, sel_, &result_);
      continue;
    }

    if (dense_group_) {
      for (uint32_t i = 0; i < sel_.count; ++i) {
        ++dense_rows_[group_codes_[sel_.rows[i]]];
      }
      for (size_t item = 0; item < arity; ++item) {
        const CompiledQuery::AggInput& in = plan_->inputs_[item];
        if (in.is_group_column) continue;  // rendered from the group key
        if (in.column < 0 || in.type == ColumnType::kString) {
          for (uint32_t i = 0; i < sel_.count; ++i) {
            dense_states_[group_codes_[sel_.rows[i]] * arity + item]
                .AddCountOnly();
          }
          result_.states[item].count += sel_.count;
          continue;
        }
        const Column& col = table.column(static_cast<size_t>(in.column));
        AggState* global = &result_.states[item];
        if (in.type == ColumnType::kInt64) {
          const int64_t* p = col.ints().data();
          for (uint32_t i = 0; i < sel_.count; ++i) {
            const uint32_t row = sel_.rows[i];
            const double v = static_cast<double>(p[row]);
            dense_states_[group_codes_[row] * arity + item].Add(v);
            global->Add(v);
          }
        } else {
          const double* p = col.doubles().data();
          for (uint32_t i = 0; i < sel_.count; ++i) {
            const uint32_t row = sel_.rows[i];
            const double v = p[row];
            dense_states_[group_codes_[row] * arity + item].Add(v);
            global->Add(v);
          }
        }
      }
      continue;
    }

    // Fallback grouping (numeric, very-high-cardinality, or sketch-carrying
    // group keys): Value-keyed sorted groups over the selection vector.
    for (uint32_t i = 0; i < sel_.count; ++i) {
      const uint32_t row = sel_.rows[i];
      Value key = group_col_->ValueAt(row);
      std::vector<AggState>& gstates = result_.GroupStates(key, arity);
      for (size_t item = 0; item < arity; ++item) {
        const CompiledQuery::AggInput& in = plan_->inputs_[item];
        if (in.is_group_column) continue;
        AggState& gs = gstates[item];
        if (in.func->IsSketch() && gs.sketch == nullptr) {
          in.func->InitState(gs, in.param);
        }
        if (in.column < 0 || in.type == ColumnType::kString) {
          if (in.func->IsSketch() && in.column >= 0) {
            const Column& col = table.column(static_cast<size_t>(in.column));
            const std::string& s = col.DictEntry(col.StringCodeAt(row));
            gs.AddString(s);
            result_.states[item].AddString(s);
          } else {
            gs.AddCountOnly();
            result_.states[item].AddCountOnly();
          }
          continue;
        }
        const Column& col = table.column(static_cast<size_t>(in.column));
        const double v = in.type == ColumnType::kInt64
                             ? static_cast<double>(col.Int64At(row))
                             : col.DoubleAt(row);
        gs.Add(v);
        result_.states[item].Add(v);
      }
    }
  }
  return done();
}

AggregateResult AggregateCursor::Take() {
  const size_t arity = plan_->inputs_.size();
  if (dense_group_) {
    // Emit only codes with matching rows, sorted by key (dictionary order
    // is insertion order, not value order).
    const Column* group_col = group_col_;
    std::vector<uint32_t> present;
    for (uint32_t code = 0; code < dense_rows_.size(); ++code) {
      if (dense_rows_[code] > 0) present.push_back(code);
    }
    std::sort(present.begin(), present.end(),
              [group_col](uint32_t a, uint32_t b) {
                return group_col->DictEntry(a) < group_col->DictEntry(b);
              });
    result_.groups.reserve(present.size());
    for (uint32_t code : present) {
      result_.groups.emplace_back(
          Value(group_col->DictEntry(code)),
          std::vector<AggState>(
              dense_states_.begin() + static_cast<ptrdiff_t>(code * arity),
              dense_states_.begin() +
                  static_cast<ptrdiff_t>((code + 1) * arity)));
    }
    dense_group_ = false;  // groups emitted; Take() is one-shot
  }
  return std::move(result_);
}

// ---------------------------------------------------------------------------
// Plan cache
// ---------------------------------------------------------------------------

void PlanCache::AttachMetrics(obs::MetricsRegistry* registry) {
  hits_metric_ = registry->GetCounter("db.plan_cache.hits");
  binds_metric_ = registry->GetCounter("db.plan_cache.binds");
  rows_scanned_ = registry->GetHistogram("db.rows_scanned");
  rows_selected_ = registry->GetHistogram("db.rows_selected");
}

void PlanCache::RecordExecution(uint64_t rows_scanned,
                                uint64_t rows_selected) {
  if (rows_scanned_ == nullptr) return;
  rows_scanned_->Record(rows_scanned);
  rows_selected_->Record(rows_selected);
}

Result<const CompiledQuery*> PlanCache::GetOrBind(const std::string& key,
                                                  const Table& table,
                                                  const SelectQuery& query) {
  std::string fingerprint = query.ToString();
  auto it = plans_.find(key);
  if (it != plans_.end() && it->second.fingerprint == fingerprint &&
      it->second.plan.CompatibleWith(table)) {
    ++hits_;
    if (hits_metric_ != nullptr) hits_metric_->Add();
    return &it->second.plan;
  }
  SEAWEED_ASSIGN_OR_RETURN(CompiledQuery plan, CompiledQuery::Bind(table, query));
  ++binds_;
  if (binds_metric_ != nullptr) binds_metric_->Add();
  Entry& entry = plans_[key];
  entry.fingerprint = std::move(fingerprint);
  entry.plan = std::move(plan);
  return &entry.plan;
}

// ---------------------------------------------------------------------------
// Executors
// ---------------------------------------------------------------------------

Result<AggregateResult> ExecuteAggregate(const Table& table,
                                         const SelectQuery& query) {
  SEAWEED_ASSIGN_OR_RETURN(CompiledQuery plan, CompiledQuery::Bind(table, query));
  return plan.Execute(table);
}

Result<AggregateResult> ExecuteAggregateScalar(const Table& table,
                                               const SelectQuery& query) {
  if (!query.IsAggregateOnly()) {
    return Status::InvalidArgument(
        "distributed execution requires aggregate-only select list");
  }
  SEAWEED_ASSIGN_OR_RETURN(CompiledPredicate pred,
                           CompiledPredicate::Bind(query.where, table));

  // Resolve aggregate input columns.
  struct AggInput {
    const AggregateFunction* func = nullptr;
    double param = 0;
    int column = -1;  // -1 for COUNT(*) or the bare group-by column
    bool is_group_column = false;
    ColumnType type = ColumnType::kInt64;
  };
  std::vector<AggInput> inputs;
  inputs.reserve(query.items.size());
  for (const auto& item : query.items) {
    AggInput in;
    in.func = item.func;
    in.param = item.EffectiveParam();
    if (!item.is_aggregate) {
      // IsAggregateOnly() guarantees this is the GROUP BY column.
      in.is_group_column = true;
      inputs.push_back(in);
      continue;
    }
    const AggDescriptor& desc = item.func->descriptor();
    if (!item.column.empty()) {
      SEAWEED_ASSIGN_OR_RETURN(in.column,
                               table.schema().RequireColumn(item.column));
      in.type = table.schema().column(static_cast<size_t>(in.column)).type;
      if (in.type == ColumnType::kString && !desc.allows_string) {
        return Status::InvalidArgument("cannot " + item.func->name() +
                                       " a string column");
      }
    } else if (!desc.allows_star) {
      return Status::InvalidArgument("only COUNT may take '*'");
    }
    SEAWEED_RETURN_NOT_OK(item.func->ValidateParam(in.param));
    inputs.push_back(in);
  }

  int group_column = -1;
  if (!query.group_by.empty()) {
    SEAWEED_ASSIGN_OR_RETURN(group_column,
                             table.schema().RequireColumn(query.group_by));
  }

  AggregateResult result;
  result.states.resize(query.items.size());
  result.endsystems = 1;
  for (size_t i = 0; i < inputs.size(); ++i) {
    const AggInput& in = inputs[i];
    if (in.func != nullptr) in.func->InitState(result.states[i], in.param);
  }
  const size_t n = table.num_rows();
  const size_t arity = query.items.size();
  for (size_t row = 0; row < n; ++row) {
    if (!pred.Matches(table, row)) continue;
    ++result.rows_matched;
    std::vector<AggState>* group = nullptr;
    if (group_column >= 0) {
      Value key =
          table.column(static_cast<size_t>(group_column)).ValueAt(row);
      group = &result.GroupStates(key, arity);
    }
    for (size_t i = 0; i < inputs.size(); ++i) {
      const AggInput& in = inputs[i];
      if (in.is_group_column) continue;  // rendered from the group key
      AggState& state = group ? (*group)[i] : result.states[i];
      if (group && in.func->IsSketch() && state.sketch == nullptr) {
        in.func->InitState(state, in.param);
      }
      if (in.column < 0 || in.type == ColumnType::kString) {
        if (in.func->IsSketch() && in.column >= 0) {
          const Column& col = table.column(static_cast<size_t>(in.column));
          const std::string& s = col.DictEntry(col.StringCodeAt(row));
          state.AddString(s);
          if (group) result.states[i].AddString(s);
        } else {
          state.AddCountOnly();
          if (group) result.states[i].AddCountOnly();
        }
        continue;
      }
      const Column& col = table.column(static_cast<size_t>(in.column));
      double v = in.type == ColumnType::kInt64
                     ? static_cast<double>(col.Int64At(row))
                     : col.DoubleAt(row);
      state.Add(v);
      if (group) result.states[i].Add(v);
    }
  }
  return result;
}

Result<int64_t> CountMatching(const Table& table, const SelectQuery& query) {
  SEAWEED_ASSIGN_OR_RETURN(BatchPredicate pred,
                           BatchPredicate::Bind(query.where, table));
  const size_t n = table.num_rows();
  if (pred.always_true()) return static_cast<int64_t>(n);
  int64_t matched = 0;
  SelVector sel;
  for (size_t batch = 0; batch < n; batch += kBatchSize) {
    const uint32_t len =
        static_cast<uint32_t>(std::min<size_t>(kBatchSize, n - batch));
    pred.FilterBatch(table, static_cast<uint32_t>(batch), len, &sel);
    matched += sel.count;
  }
  return matched;
}

Result<RowSet> ExecuteSelect(const Table& table, const SelectQuery& query,
                             size_t limit) {
  SEAWEED_ASSIGN_OR_RETURN(BatchPredicate pred,
                           BatchPredicate::Bind(query.where, table));
  RowSet out;
  std::vector<int> cols;
  bool star = false;
  for (const auto& item : query.items) {
    if (item.is_aggregate) {
      return Status::InvalidArgument(
          "mixed aggregate/projection select list is not supported");
    }
    if (item.column.empty()) {
      star = true;
    } else {
      SEAWEED_ASSIGN_OR_RETURN(int c,
                               table.schema().RequireColumn(item.column));
      cols.push_back(c);
    }
  }
  if (star) {
    cols.clear();
    for (size_t i = 0; i < table.num_columns(); ++i) {
      cols.push_back(static_cast<int>(i));
    }
  }
  for (int c : cols) {
    out.column_names.push_back(table.schema().column(static_cast<size_t>(c)).name);
  }
  const size_t n = table.num_rows();
  SelVector sel;
  for (size_t batch = 0; batch < n && out.rows.size() < limit;
       batch += kBatchSize) {
    const uint32_t start = static_cast<uint32_t>(batch);
    const uint32_t len =
        static_cast<uint32_t>(std::min<size_t>(kBatchSize, n - batch));
    pred.FilterBatch(table, start, len, &sel);
    for (uint32_t i = 0; i < sel.count && out.rows.size() < limit; ++i) {
      const size_t row = sel.rows[i];
      std::vector<Value> vals;
      vals.reserve(cols.size());
      for (int c : cols) {
        vals.push_back(table.column(static_cast<size_t>(c)).ValueAt(row));
      }
      out.rows.push_back(std::move(vals));
    }
  }
  return out;
}

}  // namespace seaweed::db
