// CSV ingestion for the relational engine, so library users can load real
// data into endsystem tables without writing column-append code.
//
// Format: comma-separated, first row optional header (must match schema
// names when present), double quotes for fields containing commas/quotes,
// values parsed according to the declared column types.
#pragma once

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "db/table.h"

namespace seaweed::db {

struct CsvOptions {
  // Whether the first row is a header. With a header the column order may
  // differ from the schema; columns absent from the schema are rejected.
  bool has_header = true;
  char delimiter = ',';
};

// Appends rows parsed from `in` to `table`. Returns the number of rows
// appended, or the first parse/type error with its line number.
Result<int64_t> AppendCsv(std::istream& in, Table* table,
                          const CsvOptions& options = {});
Result<int64_t> AppendCsvFile(const std::string& path, Table* table,
                              const CsvOptions& options = {});

}  // namespace seaweed::db
