#include "db/ast.h"

#include <cmath>
#include <cstdio>

#include "db/aggregate.h"
#include "db/schema.h"

namespace seaweed::db {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

bool EvalCompare(CompareOp op, int cmp3) {
  switch (op) {
    case CompareOp::kEq:
      return cmp3 == 0;
    case CompareOp::kNe:
      return cmp3 != 0;
    case CompareOp::kLt:
      return cmp3 < 0;
    case CompareOp::kLe:
      return cmp3 <= 0;
    case CompareOp::kGt:
      return cmp3 > 0;
    case CompareOp::kGe:
      return cmp3 >= 0;
  }
  return false;
}

PredicatePtr Predicate::True() {
  static const PredicatePtr kTrueNode = std::make_shared<Predicate>();
  return kTrueNode;
}

PredicatePtr Predicate::Compare(std::string column, CompareOp op,
                                Value literal) {
  auto p = std::make_shared<Predicate>();
  p->kind = Kind::kCompare;
  p->column = std::move(column);
  p->op = op;
  p->literal = std::move(literal);
  return p;
}

PredicatePtr Predicate::And(PredicatePtr l, PredicatePtr r) {
  auto p = std::make_shared<Predicate>();
  p->kind = Kind::kAnd;
  p->left = std::move(l);
  p->right = std::move(r);
  return p;
}

PredicatePtr Predicate::Or(PredicatePtr l, PredicatePtr r) {
  auto p = std::make_shared<Predicate>();
  p->kind = Kind::kOr;
  p->left = std::move(l);
  p->right = std::move(r);
  return p;
}

std::string Predicate::ToString() const {
  switch (kind) {
    case Kind::kTrue:
      return "TRUE";
    case Kind::kCompare:
      return column + " " + CompareOpName(op) + " " + literal.ToString();
    case Kind::kAnd:
      return "(" + left->ToString() + " AND " + right->ToString() + ")";
    case Kind::kOr:
      return "(" + left->ToString() + " OR " + right->ToString() + ")";
  }
  return "?";
}

double SelectItem::EffectiveParam() const {
  if (has_param) return param;
  return func != nullptr ? func->descriptor().default_param : 0;
}

namespace {

// Renders a function parameter so that re-parsing ToString() output yields
// the same value (ToString doubles as the plan-cache fingerprint).
std::string FormatParam(double p) {
  if (p == std::floor(p) && std::abs(p) < 1e15) {
    return std::to_string(static_cast<int64_t>(p));
  }
  char buf[64];
  snprintf(buf, sizeof(buf), "%.17g", p);
  return buf;
}

}  // namespace

bool SelectQuery::IsAggregateOnly() const {
  bool any_aggregate = false;
  for (const auto& item : items) {
    if (item.is_aggregate) {
      any_aggregate = true;
      continue;
    }
    // A bare column is permitted only when it names the GROUP BY column.
    if (group_by.empty() || !EqualsIgnoreCase(item.column, group_by)) {
      return false;
    }
  }
  return any_aggregate;
}

std::string SelectQuery::ToString() const {
  std::string out = "SELECT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i) out += ", ";
    const auto& item = items[i];
    if (item.is_aggregate) {
      out += item.func->name();
      out += "(";
      out += item.column.empty() ? "*" : item.column;
      if (item.has_param) {
        out += ", ";
        out += FormatParam(item.param);
      }
      out += ")";
    } else {
      out += item.column.empty() ? "*" : item.column;
    }
  }
  out += " FROM " + table;
  if (where && where->kind != Predicate::Kind::kTrue) {
    out += " WHERE " + where->ToString();
  }
  if (!group_by.empty()) {
    out += " GROUP BY " + group_by;
  }
  return out;
}

}  // namespace seaweed::db
