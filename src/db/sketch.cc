#include "db/sketch.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "common/logging.h"

namespace seaweed::db {

namespace {

// splitmix64 finalizer: a cheap, well-mixed 64-bit hash for fixed-width
// inputs. Deterministic across platforms (pure integer arithmetic).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  return Mix64(bits);
}

uint64_t HashString(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a 64
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return Mix64(h);
}

constexpr uint8_t kSketchPayloadVersion = 1;

Status CheckVersion(Reader& r) {
  SEAWEED_ASSIGN_OR_RETURN(uint8_t v, r.GetU8());
  if (v != kSketchPayloadVersion) {
    return Status::ParseError("unsupported sketch payload version " +
                              std::to_string(v));
  }
  return Status::OK();
}

}  // namespace

size_t SketchState::EncodedBytes() const {
  Writer w;
  Encode(w);
  return w.size();
}

// ---------------------------------------------------------------------------
// HyperLogLog
// ---------------------------------------------------------------------------

void HllSketch::AddHash(uint64_t h) {
  const size_t idx = static_cast<size_t>(h >> (64 - kPrecision));
  // Rank of the first set bit in the remaining 52 bits (1-based); an
  // all-zero remainder gets the maximum rank.
  const uint64_t rest = h << kPrecision;
  const uint8_t rank = static_cast<uint8_t>(
      rest == 0 ? (64 - kPrecision + 1) : std::countl_zero(rest) + 1);
  if (rank > regs_[idx]) regs_[idx] = rank;
}

void HllSketch::Update(double v) { AddHash(HashDouble(v)); }

void HllSketch::UpdateString(const std::string& s) { AddHash(HashString(s)); }

void HllSketch::Merge(const SketchState& other) {
  const auto& o = static_cast<const HllSketch&>(other);
  for (size_t i = 0; i < kRegisters; ++i) {
    regs_[i] = std::max(regs_[i], o.regs_[i]);
  }
}

std::unique_ptr<SketchState> HllSketch::Clone() const {
  return std::make_unique<HllSketch>(*this);
}

bool HllSketch::Equals(const SketchState& other) const {
  return regs_ == static_cast<const HllSketch&>(other).regs_;
}

double HllSketch::Estimate() const {
  const double m = static_cast<double>(kRegisters);
  const double alpha = 0.7213 / (1.0 + 1.079 / m);  // alpha_m for m >= 128
  double inv_sum = 0;
  size_t zeros = 0;
  for (uint8_t r : regs_) {
    inv_sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zeros;
  }
  double estimate = alpha * m * m / inv_sum;
  if (estimate <= 2.5 * m && zeros > 0) {
    // Linear counting handles the small-cardinality range better.
    estimate = m * std::log(m / static_cast<double>(zeros));
  }
  return estimate;
}

void HllSketch::Encode(Writer& w) const {
  w.PutU8(kSketchPayloadVersion);
  // Dense registers cost kRegisters bytes; a sparse (delta-index, value)
  // list wins while few registers are set. Pick the smaller form.
  size_t nonzero = 0;
  for (uint8_t r : regs_) nonzero += (r != 0);
  if (nonzero * 3 < kRegisters) {
    w.PutU8(1);  // sparse
    w.PutVarint(nonzero);
    size_t prev = 0;
    for (size_t i = 0; i < kRegisters; ++i) {
      if (regs_[i] == 0) continue;
      w.PutVarint(i - prev);
      w.PutU8(regs_[i]);
      prev = i;
    }
  } else {
    w.PutU8(0);  // dense
    w.PutBytes(regs_.data(), kRegisters);
  }
}

Result<std::unique_ptr<SketchState>> HllSketch::Decode(Reader& r) {
  SEAWEED_RETURN_NOT_OK(CheckVersion(r));
  auto out = std::make_unique<HllSketch>();
  SEAWEED_ASSIGN_OR_RETURN(uint8_t mode, r.GetU8());
  if (mode == 0) {
    for (size_t i = 0; i < kRegisters; ++i) {
      SEAWEED_ASSIGN_OR_RETURN(out->regs_[i], r.GetU8());
    }
  } else if (mode == 1) {
    SEAWEED_ASSIGN_OR_RETURN(uint64_t n, r.GetVarint());
    if (n > kRegisters) return Status::ParseError("implausible HLL entries");
    size_t idx = 0;
    for (uint64_t i = 0; i < n; ++i) {
      SEAWEED_ASSIGN_OR_RETURN(uint64_t delta, r.GetVarint());
      idx += delta;
      if (idx >= kRegisters) return Status::ParseError("HLL index overflow");
      SEAWEED_ASSIGN_OR_RETURN(out->regs_[idx], r.GetU8());
    }
  } else {
    return Status::ParseError("unknown HLL encoding mode");
  }
  return {std::move(out)};
}

// ---------------------------------------------------------------------------
// Quantile sketch
// ---------------------------------------------------------------------------

void QuantileSketch::Update(double v) {
  pts_.emplace_back(v, 1.0);
  CompactIfNeeded();
}

void QuantileSketch::UpdateString(const std::string&) {
  SEAWEED_CHECK_MSG(false, "QUANTILE over a string column");
}

void QuantileSketch::Merge(const SketchState& other) {
  const auto& o = static_cast<const QuantileSketch&>(other);
  pts_.insert(pts_.end(), o.pts_.begin(), o.pts_.end());
  CompactIfNeeded();
}

void QuantileSketch::CompactIfNeeded() {
  if (pts_.size() < 2 * kMaxCentroids) return;
  std::sort(pts_.begin(), pts_.end());
  const size_t k = kMaxCentroids;
  double total = 0;
  for (const auto& [v, w] : pts_) total += w;
  std::vector<std::pair<double, double>> out;
  out.reserve(k);
  size_t group = 0;
  double cum = 0, acc_vw = 0, acc_w = 0;
  for (const auto& [v, w] : pts_) {
    acc_vw += v * w;
    acc_w += w;
    cum += w;
    // Flush when the cumulative weight reaches this group's boundary
    // (equal-weight chunks keep per-compaction rank error ~ 1/k).
    if (cum >= total * static_cast<double>(group + 1) / static_cast<double>(k)) {
      out.emplace_back(acc_vw / acc_w, acc_w);
      acc_vw = acc_w = 0;
      ++group;
    }
  }
  if (acc_w > 0) out.emplace_back(acc_vw / acc_w, acc_w);
  pts_ = std::move(out);
}

std::unique_ptr<SketchState> QuantileSketch::Clone() const {
  return std::make_unique<QuantileSketch>(*this);
}

bool QuantileSketch::Equals(const SketchState& other) const {
  return pts_ == static_cast<const QuantileSketch&>(other).pts_;
}

double QuantileSketch::total_weight() const {
  double total = 0;
  for (const auto& [v, w] : pts_) total += w;
  return total;
}

double QuantileSketch::Query(double q) const {
  if (pts_.empty()) return 0;
  std::vector<std::pair<double, double>> sorted = pts_;
  std::sort(sorted.begin(), sorted.end());
  double total = 0;
  for (const auto& [v, w] : sorted) total += w;
  const double target = q * total;
  double cum = 0;
  for (const auto& [v, w] : sorted) {
    cum += w;
    if (cum >= target) return v;
  }
  return sorted.back().first;
}

void QuantileSketch::Encode(Writer& w) const {
  // Verbatim buffer dump: Decode(Encode(s)) must reproduce the state
  // exactly (the codec-on/off differentials depend on it), so no
  // compaction happens here.
  w.PutU8(kSketchPayloadVersion);
  w.PutVarint(pts_.size());
  for (const auto& [v, wt] : pts_) {
    w.PutDouble(v);
    w.PutDouble(wt);
  }
}

Result<std::unique_ptr<SketchState>> QuantileSketch::Decode(Reader& r) {
  SEAWEED_RETURN_NOT_OK(CheckVersion(r));
  auto out = std::make_unique<QuantileSketch>();
  SEAWEED_ASSIGN_OR_RETURN(uint64_t n, r.GetVarint());
  if (n > 2 * kMaxCentroids) {
    return Status::ParseError("implausible quantile centroid count");
  }
  out->pts_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    SEAWEED_ASSIGN_OR_RETURN(double v, r.GetDouble());
    SEAWEED_ASSIGN_OR_RETURN(double wt, r.GetDouble());
    out->pts_.emplace_back(v, wt);
  }
  return {std::move(out)};
}

// ---------------------------------------------------------------------------
// Top-k (Misra-Gries)
// ---------------------------------------------------------------------------

size_t TopKSketch::CapacityFor(int64_t k) {
  return std::max<size_t>(64, static_cast<size_t>(k) * 8);
}

namespace {

// Total order over top-k keys that tolerates mixed numeric/string entries
// (reachable only via malformed payloads — one select item always feeds a
// single column type): numerics sort before strings. Within one type class
// this is exactly Value::operator<, so well-formed sketches are unaffected.
bool KeyLess(const Value& a, const Value& b) {
  if (a.is_string() != b.is_string()) return !a.is_string();
  return a.Compare(b) < 0;
}

bool KeyEq(const Value& a, const Value& b) {
  if (a.is_string() != b.is_string()) return false;
  return a.Compare(b) == 0;
}

}  // namespace

void TopKSketch::Add(const Value& key, int64_t weight) {
  auto it = std::lower_bound(
      counts_.begin(), counts_.end(), key,
      [](const auto& entry, const Value& k) { return KeyLess(entry.first, k); });
  if (it != counts_.end() && KeyEq(it->first, key)) {
    it->second += weight;
    return;
  }
  counts_.insert(it, {key, weight});
  TrimToCapacity();
}

void TopKSketch::TrimToCapacity() {
  if (counts_.size() <= capacity_) return;
  // Misra-Gries decrement: subtract the (capacity+1)-th largest count from
  // everyone and drop the non-positive. Counts stay within N/capacity of
  // the truth, and the summary stays mergeable.
  std::vector<int64_t> by_count;
  by_count.reserve(counts_.size());
  for (const auto& [k, c] : counts_) by_count.push_back(c);
  std::nth_element(by_count.begin(), by_count.begin() + static_cast<long>(capacity_),
                   by_count.end(), std::greater<int64_t>());
  const int64_t cut = by_count[capacity_];
  std::vector<std::pair<Value, int64_t>> kept;
  kept.reserve(capacity_);
  for (auto& [k, c] : counts_) {
    if (c > cut) kept.emplace_back(std::move(k), c - cut);
  }
  counts_ = std::move(kept);
}

void TopKSketch::Update(double v) { Add(Value(v), 1); }

void TopKSketch::UpdateString(const std::string& s) { Add(Value(s), 1); }

void TopKSketch::Merge(const SketchState& other) {
  const auto& o = static_cast<const TopKSketch&>(other);
  // Pointwise sum over the key union, then one trim; inserting via Add
  // would trim mid-merge and lose more than necessary.
  for (const auto& [k, c] : o.counts_) {
    auto it = std::lower_bound(
        counts_.begin(), counts_.end(), k,
        [](const auto& entry, const Value& key) { return KeyLess(entry.first, key); });
    if (it != counts_.end() && KeyEq(it->first, k)) {
      it->second += c;
    } else {
      counts_.insert(it, {k, c});
    }
  }
  TrimToCapacity();
}

std::unique_ptr<SketchState> TopKSketch::Clone() const {
  return std::make_unique<TopKSketch>(*this);
}

bool TopKSketch::Equals(const SketchState& other) const {
  const auto& o = static_cast<const TopKSketch&>(other);
  if (capacity_ != o.capacity_ || counts_.size() != o.counts_.size()) {
    return false;
  }
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (!KeyEq(counts_[i].first, o.counts_[i].first) ||
        counts_[i].second != o.counts_[i].second) {
      return false;
    }
  }
  return true;
}

std::vector<std::pair<Value, int64_t>> TopKSketch::Top(size_t k) const {
  std::vector<std::pair<Value, int64_t>> out = counts_;
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return KeyLess(a.first, b.first);
  });
  if (out.size() > k) out.resize(k);
  return out;
}

void TopKSketch::Encode(Writer& w) const {
  w.PutU8(kSketchPayloadVersion);
  w.PutVarint(capacity_);
  w.PutVarint(counts_.size());
  for (const auto& [k, c] : counts_) {
    k.Encode(w);
    w.PutVarint(static_cast<uint64_t>(c));
  }
}

Result<std::unique_ptr<SketchState>> TopKSketch::Decode(Reader& r) {
  SEAWEED_RETURN_NOT_OK(CheckVersion(r));
  SEAWEED_ASSIGN_OR_RETURN(uint64_t capacity, r.GetVarint());
  if (capacity == 0 || capacity > (size_t{1} << 16)) {
    return Status::ParseError("implausible top-k capacity");
  }
  auto out = std::make_unique<TopKSketch>(static_cast<size_t>(capacity));
  SEAWEED_ASSIGN_OR_RETURN(uint64_t n, r.GetVarint());
  if (n > capacity) return Status::ParseError("top-k entries exceed capacity");
  out->counts_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    SEAWEED_ASSIGN_OR_RETURN(Value k, Value::Decode(r));
    SEAWEED_ASSIGN_OR_RETURN(uint64_t c, r.GetVarint());
    out->counts_.emplace_back(std::move(k), static_cast<int64_t>(c));
  }
  // Keys must arrive sorted (the canonical encode order); reject rather
  // than silently re-sort so corrupted payloads are visible.
  for (size_t i = 1; i < out->counts_.size(); ++i) {
    if (!KeyLess(out->counts_[i - 1].first, out->counts_[i].first)) {
      return Status::ParseError("top-k keys out of order");
    }
  }
  return {std::move(out)};
}

// ---------------------------------------------------------------------------
// Tag dispatch
// ---------------------------------------------------------------------------

Result<std::unique_ptr<SketchState>> DecodeSketchState(uint8_t tag,
                                                       Reader& r) {
  switch (tag) {
    case kStateTagHll:
      return HllSketch::Decode(r);
    case kStateTagQuantile:
      return QuantileSketch::Decode(r);
    case kStateTagTopK:
      return TopKSketch::Decode(r);
    default:
      return Status::ParseError("unknown aggregate state tag " +
                                std::to_string(tag));
  }
}

}  // namespace seaweed::db
