#include "db/aggregate.h"

#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include "db/query_exec.h"
#include "db/schema.h"
#include "db/sketch.h"
#include "db/table.h"

namespace seaweed::db {

Status AggregateFunction::ValidateParam(double) const {
  return Status::OK();
}

void AggregateFunction::InitState(AggState&, double) const {}

void AggregateFunction::AccumulateBatch(const Table& table, int column,
                                        const SelVector& sel,
                                        AggState& state) const {
  if (column < 0) {
    state.count += sel.count;  // FUNC(*)
    return;
  }
  const Column& col = table.column(static_cast<size_t>(column));
  switch (table.schema().column(static_cast<size_t>(column)).type) {
    case ColumnType::kString:
      state.count += sel.count;
      return;
    case ColumnType::kInt64:
      AccumulateSel(col.ints().data(), sel, &state);
      return;
    case ColumnType::kDouble:
      AccumulateSel(col.doubles().data(), sel, &state);
      return;
  }
}

void AggregateFunction::AccumulateDense(const Table& table, int column,
                                        uint32_t start, uint32_t len,
                                        AggState& state) const {
  if (column < 0) {
    state.count += len;
    return;
  }
  const Column& col = table.column(static_cast<size_t>(column));
  switch (table.schema().column(static_cast<size_t>(column)).type) {
    case ColumnType::kString:
      state.count += len;
      return;
    case ColumnType::kInt64:
      seaweed::db::AccumulateDense(col.ints().data(), start, len, &state);
      return;
    case ColumnType::kDouble:
      seaweed::db::AccumulateDense(col.doubles().data(), start, len, &state);
      return;
  }
}

namespace {

// --- Exact functions -------------------------------------------------------

AggDescriptor ExactDescriptor(const char* name) {
  AggDescriptor d;
  d.name = name;
  d.state_tag = 0;
  d.exact = true;
  return d;
}

class SumFunction final : public AggregateFunction {
 public:
  SumFunction() : AggregateFunction(ExactDescriptor("SUM")) {}

 protected:
  Result<Value> FinalizeImpl(const AggState& s, double) const override {
    // SUM over the Anemone columns is integral; keep double to avoid
    // overflow at global scale.
    return Value(s.sum);
  }
};

class CountFunction final : public AggregateFunction {
 public:
  CountFunction() : AggregateFunction([] {
    AggDescriptor d = ExactDescriptor("COUNT");
    d.allows_star = true;
    d.allows_string = true;
    return d;
  }()) {}

 protected:
  Result<Value> FinalizeImpl(const AggState& s, double) const override {
    return Value(s.count);
  }
};

class AvgFunction final : public AggregateFunction {
 public:
  AvgFunction() : AggregateFunction(ExactDescriptor("AVG")) {}

 protected:
  Result<Value> FinalizeImpl(const AggState& s, double) const override {
    if (s.count == 0) return Status::NotFound("AVG over empty input");
    return Value(s.sum / static_cast<double>(s.count));
  }
};

class MinFunction final : public AggregateFunction {
 public:
  MinFunction() : AggregateFunction(ExactDescriptor("MIN")) {}

 protected:
  Result<Value> FinalizeImpl(const AggState& s, double) const override {
    if (s.count == 0) return Status::NotFound("MIN over empty input");
    return Value(s.min);
  }
};

class MaxFunction final : public AggregateFunction {
 public:
  MaxFunction() : AggregateFunction(ExactDescriptor("MAX")) {}

 protected:
  Result<Value> FinalizeImpl(const AggState& s, double) const override {
    if (s.count == 0) return Status::NotFound("MAX over empty input");
    return Value(s.max);
  }
};

// --- Sketch functions ------------------------------------------------------

// Shared batch accumulation for sketch functions: numeric columns flow
// through the base kernels (AggState::Add feeds the sketch), string
// columns are routed to the sketch as dictionary entries.
class SketchFunction : public AggregateFunction {
 public:
  using AggregateFunction::AggregateFunction;

  void AccumulateBatch(const Table& table, int column, const SelVector& sel,
                       AggState& state) const override {
    if (column >= 0 &&
        table.schema().column(static_cast<size_t>(column)).type ==
            ColumnType::kString) {
      const Column& col = table.column(static_cast<size_t>(column));
      for (uint32_t i = 0; i < sel.count; ++i) {
        state.AddString(col.DictEntry(col.StringCodeAt(sel.rows[i])));
      }
      return;
    }
    AggregateFunction::AccumulateBatch(table, column, sel, state);
  }

  void AccumulateDense(const Table& table, int column, uint32_t start,
                       uint32_t len, AggState& state) const override {
    if (column >= 0 &&
        table.schema().column(static_cast<size_t>(column)).type ==
            ColumnType::kString) {
      const Column& col = table.column(static_cast<size_t>(column));
      for (uint32_t row = start; row < start + len; ++row) {
        state.AddString(col.DictEntry(col.StringCodeAt(row)));
      }
      return;
    }
    AggregateFunction::AccumulateDense(table, column, start, len, state);
  }
};

class DistinctApproxFunction final : public SketchFunction {
 public:
  DistinctApproxFunction() : SketchFunction([] {
    AggDescriptor d;
    d.name = "DISTINCT_APPROX";
    d.state_tag = kStateTagHll;
    d.exact = false;
    d.error_bound = "HyperLogLog p=12: ~1.6% standard error, <=2% typical "
                    "relative error; merge is order-independent";
    d.allows_string = true;
    return d;
  }()) {}

  void InitState(AggState& state, double) const override {
    state.sketch = std::make_unique<HllSketch>();
  }

 protected:
  Result<Value> FinalizeImpl(const AggState& s, double) const override {
    if (s.sketch == nullptr || s.count == 0) return Value(int64_t{0});
    const auto& hll = static_cast<const HllSketch&>(*s.sketch);
    return Value(static_cast<int64_t>(std::llround(hll.Estimate())));
  }
};

class QuantileFunction final : public SketchFunction {
 public:
  QuantileFunction() : SketchFunction([] {
    AggDescriptor d;
    d.name = "QUANTILE";
    d.state_tag = kStateTagQuantile;
    d.exact = false;
    d.error_bound = "compacting buffer, 1024 centroids: observed rank error "
                    "<=1%; deterministic given the merge tree";
    d.takes_param = true;
    d.default_param = 0.5;
    return d;
  }()) {}

  Status ValidateParam(double q) const override {
    if (!(q > 0.0 && q < 1.0)) {
      return Status::InvalidArgument(
          "QUANTILE parameter must be in (0, 1), got " + std::to_string(q));
    }
    return Status::OK();
  }

  void InitState(AggState& state, double) const override {
    state.sketch = std::make_unique<QuantileSketch>();
  }

 protected:
  Result<Value> FinalizeImpl(const AggState& s, double q) const override {
    if (s.sketch == nullptr || s.count == 0) {
      return Status::NotFound("QUANTILE over empty input");
    }
    const auto& sk = static_cast<const QuantileSketch&>(*s.sketch);
    return Value(sk.Query(q));
  }
};

class TopKFunction final : public SketchFunction {
 public:
  TopKFunction() : SketchFunction([] {
    AggDescriptor d;
    d.name = "TOPK";
    d.state_tag = kStateTagTopK;
    d.exact = false;
    d.error_bound = "Misra-Gries, capacity max(8k, 64): per-key count "
                    "under-estimate <= rows/capacity; deterministic given "
                    "the merge tree";
    d.allows_string = true;
    d.takes_param = true;
    d.default_param = 10;
    return d;
  }()) {}

  Status ValidateParam(double k) const override {
    if (!(k >= 1 && k <= 256) || k != std::floor(k)) {
      return Status::InvalidArgument(
          "TOPK parameter must be an integer in [1, 256]");
    }
    return Status::OK();
  }

  void InitState(AggState& state, double k) const override {
    state.sketch = std::make_unique<TopKSketch>(
        TopKSketch::CapacityFor(static_cast<int64_t>(k)));
  }

 protected:
  Result<Value> FinalizeImpl(const AggState& s, double k) const override {
    if (s.sketch == nullptr || s.count == 0) {
      return Status::NotFound("TOPK over empty input");
    }
    const auto& sk = static_cast<const TopKSketch&>(*s.sketch);
    // Canonical rendering: "key:count" joined with ';', ordered by
    // (count desc, key asc). Keys render like FormatValue (%.17g doubles),
    // so integral numerics print without a decimal point.
    std::string out;
    for (const auto& [key, cnt] : sk.Top(static_cast<size_t>(k))) {
      if (!out.empty()) out += ';';
      if (key.is_double()) {
        char buf[64];
        snprintf(buf, sizeof(buf), "%.17g", key.AsDouble());
        out += buf;
      } else if (key.is_int64()) {
        out += std::to_string(key.AsInt64());
      } else {
        out += key.AsString();
      }
      out += ':';
      out += std::to_string(cnt);
    }
    return Value(std::move(out));
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

AggregateRegistry::AggregateRegistry() {
  Register(std::make_unique<SumFunction>());
  Register(std::make_unique<CountFunction>());
  Register(std::make_unique<AvgFunction>());
  Register(std::make_unique<MinFunction>());
  Register(std::make_unique<MaxFunction>());
  Register(std::make_unique<DistinctApproxFunction>());
  Register(std::make_unique<QuantileFunction>());
  Register(std::make_unique<TopKFunction>());
}

AggregateRegistry& AggregateRegistry::Global() {
  static AggregateRegistry* registry = new AggregateRegistry();
  return *registry;
}

const AggregateFunction* AggregateRegistry::Register(
    std::unique_ptr<AggregateFunction> fn) {
  SEAWEED_CHECK_MSG(Find(fn->name()) == nullptr,
                    "duplicate aggregate function name");
  SEAWEED_CHECK_MSG(
      fn->state_tag() == 0 || FindByTag(fn->state_tag()) == nullptr,
      "duplicate aggregate state tag");
  fns_.push_back(std::move(fn));
  return fns_.back().get();
}

const AggregateFunction* AggregateRegistry::Find(
    const std::string& name) const {
  for (const auto& fn : fns_) {
    if (EqualsIgnoreCase(fn->name(), name)) return fn.get();
  }
  return nullptr;
}

const AggregateFunction* AggregateRegistry::FindByTag(uint8_t tag) const {
  if (tag == 0) return nullptr;
  for (const auto& fn : fns_) {
    if (fn->state_tag() == tag) return fn.get();
  }
  return nullptr;
}

std::vector<const AggregateFunction*> AggregateRegistry::All() const {
  std::vector<const AggregateFunction*> out;
  out.reserve(fns_.size());
  for (const auto& fn : fns_) out.push_back(fn.get());
  return out;
}

const AggregateFunction* FindAggregate(const std::string& name) {
  return AggregateRegistry::Global().Find(name);
}

}  // namespace seaweed::db
