// A per-endsystem database: named tables plus summary export.
//
// This is the "local DBMS" of the paper. Each Seaweed endsystem owns one
// Database holding its Anemone tables; the Database executes local queries
// and exports the data summary (histograms on indexed columns) that gets
// replicated to the metadata replica set.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "common/result.h"
#include "db/estimator.h"
#include "db/histogram.h"
#include "db/query_exec.h"
#include "db/sql_parser.h"
#include "db/table.h"

namespace seaweed::db {

// Summary of one table: row count plus per-indexed-column histograms.
struct TableSummary {
  std::string table_name;
  int64_t total_rows = 0;
  std::vector<ColumnSummary> columns;

  void Encode(Writer& w) const;
  static Result<TableSummary> Decode(Reader& r);

  // Estimated rows of this table matching `query`'s predicate.
  double EstimateRows(const SelectQuery& query) const {
    RowCountEstimator est(&columns, total_rows);
    return est.EstimateRows(query.where);
  }
};

// Bytes needed to ship `current` to a replica that already holds `previous`
// as a delta encoding: per changed histogram bucket / MCV entry, position +
// new value, plus a small per-column header. Identical summaries cost a few
// bytes of version header. This implements the optimization the paper
// proposes in §3.2.2 ("sending delta-encoded histograms which could reduce
// network overhead compared to pushing the entire histogram").
size_t SummaryDeltaBytes(const struct DatabaseSummary& previous,
                         const struct DatabaseSummary& current);

// Summary of a whole endsystem database. This is the `h` bytes of Table 1.
struct DatabaseSummary {
  std::vector<TableSummary> tables;

  const TableSummary* FindTable(const std::string& name) const;

  void Encode(Writer& w) const;
  static Result<DatabaseSummary> Decode(Reader& r);
  size_t EncodedBytes() const;

  // Estimated rows matching `query`; 0 when the table is absent.
  double EstimateRows(const SelectQuery& query) const;
};

class Database {
 public:
  // Creates (and owns) a table. Fails if the name exists.
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  Table* FindTable(const std::string& name);
  const Table* FindTable(const std::string& name) const;

  // Parses and executes an aggregate query locally.
  Result<AggregateResult> ExecuteAggregate(const SelectQuery& query) const;
  Result<AggregateResult> ExecuteAggregateSql(
      const std::string& sql, const ParseOptions& options = {}) const;

  // Like ExecuteAggregate, but binds through `cache` under `key` so repeated
  // executions of the same query reuse the compiled plan.
  Result<AggregateResult> ExecuteAggregateCached(const SelectQuery& query,
                                                 PlanCache* cache,
                                                 const std::string& key) const;

  // Begins a resumable (time-sliced) execution bound through `cache`. The
  // cursor references this database's table and the cache-owned plan: both
  // must outlive it (and the plan must not be re-bound under `key`).
  Result<std::unique_ptr<AggregateCursor>> BeginAggregateCursor(
      const SelectQuery& query, PlanCache* cache, const std::string& key) const;

  // Exact count of rows matching the query (ground truth / available-
  // endsystem row counts).
  Result<int64_t> CountMatching(const SelectQuery& query) const;

  // Builds the data summary over indexed columns of every table.
  DatabaseSummary BuildSummary(int max_buckets = 200, int max_mcvs = 32) const;

  // Total data bytes (the paper's per-endsystem `d`).
  size_t MemoryBytes() const;

 private:
  // std::map for deterministic iteration order in summaries.
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace seaweed::db
