// Recursive-descent parser for the Seaweed SQL subset (grammar in ast.h).
#pragma once

#include <string>

#include "common/result.h"
#include "common/time_types.h"
#include "db/ast.h"

namespace seaweed::db {

struct ParseOptions {
  // Unix-seconds value substituted for NOW(). The paper notes NOW() is
  // evaluated on the *injecting* endsystem and shipped as a constant.
  int64_t now_unix_seconds = 0;
};

// Parses a SELECT statement. Reports precise ParseError positions.
Result<SelectQuery> ParseSelect(const std::string& sql,
                                const ParseOptions& options = {});

}  // namespace seaweed::db
