#include "db/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "db/schema.h"

namespace seaweed::db {

namespace {

// Splits one CSV record honoring quotes. Returns false on unterminated
// quote.
bool SplitCsvLine(const std::string& line, char delimiter,
                  std::vector<std::string>* out) {
  out->clear();
  std::string field;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == delimiter) {
      out->push_back(std::move(field));
      field.clear();
    } else if (c == '\r') {
      // tolerate CRLF
    } else {
      field.push_back(c);
    }
  }
  if (in_quotes) return false;
  out->push_back(std::move(field));
  return true;
}

}  // namespace

Result<int64_t> AppendCsv(std::istream& in, Table* table,
                          const CsvOptions& options) {
  const Schema& schema = table->schema();
  // column_order[i] = schema column index for CSV field i.
  std::vector<int> column_order;
  std::string line;
  int line_no = 0;

  if (options.has_header) {
    if (!std::getline(in, line)) {
      return Status::ParseError("empty CSV input (header expected)");
    }
    ++line_no;
    std::vector<std::string> names;
    if (!SplitCsvLine(line, options.delimiter, &names)) {
      return Status::ParseError("unterminated quote in header");
    }
    for (const auto& name : names) {
      int idx = schema.FindColumn(name);
      if (idx < 0) {
        return Status::ParseError("CSV header column '" + name +
                                  "' not in schema");
      }
      column_order.push_back(idx);
    }
    // Every schema column must be present exactly once.
    if (column_order.size() != schema.num_columns()) {
      return Status::ParseError("CSV header has " +
                                std::to_string(column_order.size()) +
                                " columns, schema has " +
                                std::to_string(schema.num_columns()));
    }
  } else {
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      column_order.push_back(static_cast<int>(i));
    }
  }

  int64_t appended = 0;
  std::vector<std::string> fields;
  std::vector<Value> row(schema.num_columns());
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (!SplitCsvLine(line, options.delimiter, &fields)) {
      return Status::ParseError("unterminated quote at line " +
                                std::to_string(line_no));
    }
    if (fields.size() != column_order.size()) {
      return Status::ParseError(
          "line " + std::to_string(line_no) + ": expected " +
          std::to_string(column_order.size()) + " fields, got " +
          std::to_string(fields.size()));
    }
    for (size_t i = 0; i < fields.size(); ++i) {
      int col = column_order[i];
      const ColumnDef& def = schema.column(static_cast<size_t>(col));
      const std::string& text = fields[i];
      char* endp = nullptr;
      switch (def.type) {
        case ColumnType::kInt64: {
          long long v = std::strtoll(text.c_str(), &endp, 10);
          if (endp == text.c_str() || *endp != '\0') {
            return Status::ParseError("line " + std::to_string(line_no) +
                                      ": bad integer '" + text + "' for " +
                                      def.name);
          }
          row[static_cast<size_t>(col)] = Value(static_cast<int64_t>(v));
          break;
        }
        case ColumnType::kDouble: {
          double v = std::strtod(text.c_str(), &endp);
          if (endp == text.c_str() || *endp != '\0') {
            return Status::ParseError("line " + std::to_string(line_no) +
                                      ": bad number '" + text + "' for " +
                                      def.name);
          }
          row[static_cast<size_t>(col)] = Value(v);
          break;
        }
        case ColumnType::kString:
          row[static_cast<size_t>(col)] = Value(text);
          break;
      }
    }
    SEAWEED_RETURN_NOT_OK(table->AppendRow(row));
    ++appended;
  }
  return appended;
}

Result<int64_t> AppendCsvFile(const std::string& path, Table* table,
                              const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  return AppendCsv(in, table, options);
}

}  // namespace seaweed::db
