#include "db/database.h"

namespace seaweed::db {

void TableSummary::Encode(Writer& w) const {
  w.PutString(table_name);
  w.PutVarint(static_cast<uint64_t>(total_rows));
  w.PutVarint(columns.size());
  for (const auto& c : columns) c.Encode(w);
}

Result<TableSummary> TableSummary::Decode(Reader& r) {
  TableSummary s;
  SEAWEED_ASSIGN_OR_RETURN(s.table_name, r.GetString());
  SEAWEED_ASSIGN_OR_RETURN(uint64_t rows, r.GetVarint());
  s.total_rows = static_cast<int64_t>(rows);
  SEAWEED_ASSIGN_OR_RETURN(uint64_t n, r.GetVarint());
  if (n > 4096) return Status::ParseError("implausible column count");
  for (uint64_t i = 0; i < n; ++i) {
    SEAWEED_ASSIGN_OR_RETURN(ColumnSummary c, ColumnSummary::Decode(r));
    s.columns.push_back(std::move(c));
  }
  return s;
}

namespace {

// Delta cost of one numeric histogram: ~13 bytes per changed/added bucket
// (index varint + double bound + count/distinct varints).
size_t NumericDeltaBytes(const NumericHistogram& prev,
                         const NumericHistogram& cur) {
  const auto& a = prev.buckets();
  const auto& b = cur.buckets();
  size_t common = std::min(a.size(), b.size());
  size_t changed = 0;
  for (size_t i = 0; i < common; ++i) {
    if (!(a[i] == b[i])) ++changed;
  }
  changed += std::max(a.size(), b.size()) - common;
  return 4 + changed * 13;
}

size_t StringDeltaBytes(const StringHistogram& prev,
                        const StringHistogram& cur) {
  size_t bytes = 4;
  for (const auto& m : cur.mcvs()) {
    bool same = false;
    for (const auto& p : prev.mcvs()) {
      if (p == m) {
        same = true;
        break;
      }
    }
    if (!same) bytes += m.value.size() + 4;
  }
  return bytes;
}

}  // namespace

size_t SummaryDeltaBytes(const DatabaseSummary& previous,
                         const DatabaseSummary& current) {
  size_t bytes = 8;  // version header
  for (const auto& table : current.tables) {
    const TableSummary* prev_table = previous.FindTable(table.table_name);
    for (const auto& col : table.columns) {
      const ColumnSummary* prev_col = nullptr;
      if (prev_table != nullptr) {
        for (const auto& pc : prev_table->columns) {
          if (EqualsIgnoreCase(pc.column_name(), col.column_name()) &&
              pc.is_numeric() == col.is_numeric()) {
            prev_col = &pc;
            break;
          }
        }
      }
      if (prev_col == nullptr) {
        bytes += col.EncodedBytes();  // new column: ship in full
      } else if (col.is_numeric()) {
        bytes += NumericDeltaBytes(prev_col->numeric(), col.numeric());
      } else {
        bytes += StringDeltaBytes(prev_col->strings(), col.strings());
      }
    }
  }
  return bytes;
}

const TableSummary* DatabaseSummary::FindTable(const std::string& name) const {
  for (const auto& t : tables) {
    if (EqualsIgnoreCase(t.table_name, name)) return &t;
  }
  return nullptr;
}

void DatabaseSummary::Encode(Writer& w) const {
  w.PutVarint(tables.size());
  for (const auto& t : tables) t.Encode(w);
}

Result<DatabaseSummary> DatabaseSummary::Decode(Reader& r) {
  DatabaseSummary s;
  SEAWEED_ASSIGN_OR_RETURN(uint64_t n, r.GetVarint());
  if (n > 4096) return Status::ParseError("implausible table count");
  for (uint64_t i = 0; i < n; ++i) {
    SEAWEED_ASSIGN_OR_RETURN(TableSummary t, TableSummary::Decode(r));
    s.tables.push_back(std::move(t));
  }
  return s;
}

size_t DatabaseSummary::EncodedBytes() const {
  Writer w;
  Encode(w);
  return w.size();
}

double DatabaseSummary::EstimateRows(const SelectQuery& query) const {
  const TableSummary* t = FindTable(query.table);
  return t ? t->EstimateRows(query) : 0.0;
}

Result<Table*> Database::CreateTable(const std::string& name, Schema schema) {
  if (tables_.count(name)) {
    return Status::AlreadyExists("table exists: " + name);
  }
  auto table = std::make_unique<Table>(std::move(schema));
  Table* ptr = table.get();
  tables_[name] = std::move(table);
  return ptr;
}

Table* Database::FindTable(const std::string& name) {
  for (auto& [n, t] : tables_) {
    if (EqualsIgnoreCase(n, name)) return t.get();
  }
  return nullptr;
}

const Table* Database::FindTable(const std::string& name) const {
  for (const auto& [n, t] : tables_) {
    if (EqualsIgnoreCase(n, name)) return t.get();
  }
  return nullptr;
}

Result<AggregateResult> Database::ExecuteAggregate(
    const SelectQuery& query) const {
  const Table* table = FindTable(query.table);
  if (!table) return Status::NotFound("no such table: " + query.table);
  return db::ExecuteAggregate(*table, query);
}

Result<AggregateResult> Database::ExecuteAggregateCached(
    const SelectQuery& query, PlanCache* cache, const std::string& key) const {
  const Table* table = FindTable(query.table);
  if (!table) return Status::NotFound("no such table: " + query.table);
  SEAWEED_ASSIGN_OR_RETURN(const CompiledQuery* plan,
                           cache->GetOrBind(key, *table, query));
  Result<AggregateResult> result = plan->Execute(*table);
  if (result.ok()) {
    cache->RecordExecution(table->num_rows(),
                           static_cast<uint64_t>(result->rows_matched));
  }
  return result;
}

Result<std::unique_ptr<AggregateCursor>> Database::BeginAggregateCursor(
    const SelectQuery& query, PlanCache* cache, const std::string& key) const {
  const Table* table = FindTable(query.table);
  if (!table) return Status::NotFound("no such table: " + query.table);
  SEAWEED_ASSIGN_OR_RETURN(const CompiledQuery* plan,
                           cache->GetOrBind(key, *table, query));
  return std::make_unique<AggregateCursor>(plan, table);
}

Result<AggregateResult> Database::ExecuteAggregateSql(
    const std::string& sql, const ParseOptions& options) const {
  SEAWEED_ASSIGN_OR_RETURN(SelectQuery query, ParseSelect(sql, options));
  return ExecuteAggregate(query);
}

Result<int64_t> Database::CountMatching(const SelectQuery& query) const {
  const Table* table = FindTable(query.table);
  if (!table) return Status::NotFound("no such table: " + query.table);
  return db::CountMatching(*table, query);
}

DatabaseSummary Database::BuildSummary(int max_buckets, int max_mcvs) const {
  DatabaseSummary summary;
  for (const auto& [name, table] : tables_) {
    TableSummary ts;
    ts.table_name = name;
    ts.total_rows = static_cast<int64_t>(table->num_rows());
    for (size_t i = 0; i < table->schema().num_columns(); ++i) {
      const ColumnDef& def = table->schema().column(i);
      if (!def.indexed) continue;
      if (def.type == ColumnType::kString) {
        ts.columns.push_back(ColumnSummary::Strings(
            def.name, StringHistogram::Build(table->column(i), max_mcvs)));
      } else {
        ts.columns.push_back(ColumnSummary::Numeric(
            def.name, NumericHistogram::Build(table->column(i), max_buckets)));
      }
    }
    summary.tables.push_back(std::move(ts));
  }
  return summary;
}

size_t Database::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& [name, table] : tables_) bytes += table->MemoryBytes();
  return bytes;
}

}  // namespace seaweed::db
