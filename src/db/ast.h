// Abstract syntax for the Seaweed SQL subset.
//
// The paper restricts distributed read-only queries to single-table
// select-project-aggregate (no joins, §1.3). The grammar:
//
//   query      := SELECT select_list FROM ident [WHERE expr]
//                 [GROUP BY ident]
//   select_list:= select_item (',' select_item)*
//   select_item:= agg '(' (ident | '*') [',' number] ')' | ident | '*'
//   agg        := any name in the AggregateRegistry (SUM, COUNT, AVG, MIN,
//                 MAX, DISTINCT_APPROX, QUANTILE, TOPK, ...)
//   expr       := conj (OR conj)*
//   conj       := atom (AND atom)*
//   atom       := ident cmp scalar | '(' expr ')'
//   cmp        := '=' | '!=' | '<>' | '<' | '<=' | '>' | '>='
//   scalar     := literal (('+'|'-') literal)*     -- constant-folded
//   literal    := number | string | NOW()
//
// NOW() binds to the injecting endsystem's clock at parse time (§4.1 note).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "db/value.h"

namespace seaweed::db {

class AggregateFunction;

enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpName(CompareOp op);

// True iff `Compare(lhs,rhs) cmp 0` holds for the operator.
bool EvalCompare(CompareOp op, int cmp3);

struct Predicate;
using PredicatePtr = std::shared_ptr<const Predicate>;

// Immutable predicate tree. Shared (not unique) ownership because parsed
// queries are broadcast to many simulated endsystems.
struct Predicate {
  enum class Kind : uint8_t { kTrue, kCompare, kAnd, kOr };

  Kind kind = Kind::kTrue;

  // kCompare:
  std::string column;
  CompareOp op = CompareOp::kEq;
  Value literal;

  // kAnd / kOr:
  PredicatePtr left;
  PredicatePtr right;

  static PredicatePtr True();
  static PredicatePtr Compare(std::string column, CompareOp op, Value literal);
  static PredicatePtr And(PredicatePtr l, PredicatePtr r);
  static PredicatePtr Or(PredicatePtr l, PredicatePtr r);

  std::string ToString() const;
};

struct SelectItem {
  bool is_aggregate = false;
  // Registry-owned aggregate function (see db/aggregate.h); null for bare
  // column / '*' projection items. The parser resolves names through
  // AggregateRegistry::Global(), so the set of functions is open.
  const AggregateFunction* func = nullptr;
  // Empty column means '*' (valid only for COUNT or plain projection '*').
  std::string column;
  // Optional function parameter (QUANTILE's q, TOPK's k). Valid only when
  // has_param; otherwise the function's default applies.
  double param = 0;
  bool has_param = false;

  // The parameter Finalize/InitState should use: the explicit one when
  // present, else the function's declared default.
  double EffectiveParam() const;
};

struct SelectQuery {
  std::string table;
  std::vector<SelectItem> items;
  PredicatePtr where;  // never null; Predicate::True() when absent
  // Optional GROUP BY column (single column; grouped aggregates stay
  // mergeable, so they aggregate in-network like plain aggregates).
  std::string group_by;

  // True when every item is an aggregate (or the GROUP BY column itself) —
  // required for distributed execution with in-network aggregation.
  bool IsAggregateOnly() const;

  std::string ToString() const;
};

}  // namespace seaweed::db
