// Column-oriented in-memory tables.
//
// Each endsystem stores its local data in tables like these (the paper used
// SQL Server 2005; see DESIGN.md for the substitution argument). Columns are
// stored as typed vectors; strings are dictionary-encoded, which both saves
// memory for the low-cardinality Anemone columns (protocol, app) and makes
// equality filters cheap.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "db/schema.h"
#include "db/value.h"

namespace seaweed::db {

// One typed column. Exactly one of the payload vectors is used, matching
// the declared type.
class Column {
 public:
  explicit Column(ColumnType type) : type_(type) {}

  ColumnType type() const { return type_; }
  size_t size() const;

  void AppendInt64(int64_t v) { ints_.push_back(v); }
  void AppendDouble(double v) { doubles_.push_back(v); }
  void AppendString(const std::string& v);

  int64_t Int64At(size_t row) const { return ints_[row]; }
  double DoubleAt(size_t row) const { return doubles_[row]; }
  const std::string& StringAt(size_t row) const {
    return dict_[codes_[row]];
  }
  uint32_t StringCodeAt(size_t row) const { return codes_[row]; }

  // Dictionary code for `v`, or -1 if the string never occurs.
  int64_t DictCode(const std::string& v) const;
  size_t dict_size() const { return dict_.size(); }
  const std::string& DictEntry(uint32_t code) const { return dict_[code]; }

  Value ValueAt(size_t row) const;

  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<uint32_t>& codes() const { return codes_; }

  // Approximate in-memory footprint in bytes (for the d parameter).
  size_t MemoryBytes() const;

 private:
  ColumnType type_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<uint32_t> codes_;
  std::vector<std::string> dict_;
  std::unordered_map<std::string, uint32_t> dict_index_;
};

class Table {
 public:
  explicit Table(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  const Column& column(size_t i) const { return columns_[i]; }
  Column& column(size_t i) { return columns_[i]; }

  // Appends a row; values must match the schema arity and types.
  Status AppendRow(const std::vector<Value>& values);

  // Fast paths used by the workload generators (no Value boxing). The caller
  // appends to each column directly and then calls CommitRow() to account
  // the row; all columns must have equal length at commit.
  void CommitRow();

  // Approximate total bytes held by this table.
  size_t MemoryBytes() const;

 private:
  Schema schema_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

}  // namespace seaweed::db
