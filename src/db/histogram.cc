#include "db/histogram.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/logging.h"

namespace seaweed::db {

NumericHistogram NumericHistogram::Build(const Column& column,
                                         int max_buckets) {
  std::vector<double> values;
  values.reserve(column.size());
  if (column.type() == ColumnType::kInt64) {
    for (int64_t v : column.ints()) values.push_back(static_cast<double>(v));
  } else if (column.type() == ColumnType::kDouble) {
    values = column.doubles();
  } else {
    SEAWEED_CHECK_MSG(false, "NumericHistogram over a string column");
  }
  return BuildFromValues(std::move(values), max_buckets);
}

NumericHistogram NumericHistogram::BuildFromValues(std::vector<double> values,
                                                   int max_buckets) {
  NumericHistogram h;
  h.total_rows_ = static_cast<int64_t>(values.size());
  if (values.empty()) return h;
  std::sort(values.begin(), values.end());
  h.min_value_ = values.front();

  const int64_t n = static_cast<int64_t>(values.size());
  const int64_t target_depth =
      std::max<int64_t>(1, (n + max_buckets - 1) / max_buckets);

  size_t i = 0;
  while (i < values.size()) {
    size_t end = std::min(values.size(), i + static_cast<size_t>(target_depth));
    // Extend the bucket so equal values never straddle a boundary — required
    // for EstimateEqual to be meaningful.
    while (end < values.size() && values[end] == values[end - 1]) ++end;
    Bucket b;
    b.upper_bound = values[end - 1];
    b.row_count = static_cast<int64_t>(end - i);
    b.distinct = 1;
    for (size_t j = i + 1; j < end; ++j) {
      if (values[j] != values[j - 1]) ++b.distinct;
    }
    h.buckets_.push_back(b);
    i = end;
  }
  return h;
}

double NumericHistogram::EstimateLessOrEqual(double v) const {
  if (buckets_.empty()) return 0;
  if (v < min_value_) return 0;
  double cum = 0;
  double prev_ub = min_value_;
  for (const Bucket& b : buckets_) {
    if (v >= b.upper_bound) {
      cum += static_cast<double>(b.row_count);
      prev_ub = b.upper_bound;
      continue;
    }
    // v falls inside this bucket: linear interpolation over (prev_ub, ub].
    double width = b.upper_bound - prev_ub;
    double frac = width > 0 ? (v - prev_ub) / width : 1.0;
    frac = std::clamp(frac, 0.0, 1.0);
    cum += frac * static_cast<double>(b.row_count);
    return cum;
  }
  return cum;
}

double NumericHistogram::EstimateLess(double v) const {
  return std::max(0.0, EstimateLessOrEqual(v) - EstimateEqual(v));
}

double NumericHistogram::EstimateEqual(double v) const {
  if (buckets_.empty()) return 0;
  if (v < min_value_) return 0;
  double prev_ub = min_value_;
  for (const Bucket& b : buckets_) {
    bool in_bucket =
        (v <= b.upper_bound) && (v > prev_ub || (&b == &buckets_.front() &&
                                                 v >= min_value_));
    if (in_bucket) {
      return static_cast<double>(b.row_count) /
             static_cast<double>(std::max<int64_t>(1, b.distinct));
    }
    prev_ub = b.upper_bound;
  }
  return 0;
}

double NumericHistogram::EstimateRange(std::optional<double> lo,
                                       bool lo_inclusive,
                                       std::optional<double> hi,
                                       bool hi_inclusive) const {
  double upper = hi.has_value()
                     ? (hi_inclusive ? EstimateLessOrEqual(*hi)
                                     : EstimateLess(*hi))
                     : static_cast<double>(total_rows_);
  double lower = lo.has_value()
                     ? (lo_inclusive ? EstimateLess(*lo)
                                     : EstimateLessOrEqual(*lo))
                     : 0.0;
  return std::max(0.0, upper - lower);
}

void NumericHistogram::Encode(Writer& w) const {
  w.PutDouble(min_value_);
  w.PutVarint(static_cast<uint64_t>(total_rows_));
  w.PutVarint(buckets_.size());
  for (const Bucket& b : buckets_) {
    w.PutDouble(b.upper_bound);
    w.PutVarint(static_cast<uint64_t>(b.row_count));
    w.PutVarint(static_cast<uint64_t>(b.distinct));
  }
}

Result<NumericHistogram> NumericHistogram::Decode(Reader& r) {
  NumericHistogram h;
  SEAWEED_ASSIGN_OR_RETURN(h.min_value_, r.GetDouble());
  SEAWEED_ASSIGN_OR_RETURN(uint64_t total, r.GetVarint());
  h.total_rows_ = static_cast<int64_t>(total);
  SEAWEED_ASSIGN_OR_RETURN(uint64_t nb, r.GetVarint());
  if (nb > 100000) return Status::ParseError("implausible bucket count");
  h.buckets_.reserve(nb);
  for (uint64_t i = 0; i < nb; ++i) {
    Bucket b;
    SEAWEED_ASSIGN_OR_RETURN(b.upper_bound, r.GetDouble());
    SEAWEED_ASSIGN_OR_RETURN(uint64_t rc, r.GetVarint());
    SEAWEED_ASSIGN_OR_RETURN(uint64_t d, r.GetVarint());
    b.row_count = static_cast<int64_t>(rc);
    b.distinct = static_cast<int64_t>(d);
    h.buckets_.push_back(b);
  }
  return h;
}

size_t NumericHistogram::EncodedBytes() const {
  Writer w;
  Encode(w);
  return w.size();
}

StringHistogram StringHistogram::Build(const Column& column, int max_mcvs) {
  SEAWEED_CHECK(column.type() == ColumnType::kString);
  StringHistogram h;
  h.total_rows_ = static_cast<int64_t>(column.size());
  // Count occurrences per dictionary code.
  std::vector<int64_t> counts(column.dict_size(), 0);
  for (uint32_t code : column.codes()) ++counts[code];
  std::vector<uint32_t> order(counts.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (counts[a] != counts[b]) return counts[a] > counts[b];
    return column.DictEntry(a) < column.DictEntry(b);
  });
  size_t keep = std::min(order.size(), static_cast<size_t>(max_mcvs));
  for (size_t i = 0; i < keep; ++i) {
    if (counts[order[i]] == 0) break;
    h.mcvs_.push_back({column.DictEntry(order[i]), counts[order[i]]});
  }
  for (size_t i = keep; i < order.size(); ++i) {
    if (counts[order[i]] == 0) continue;
    h.other_count_ += counts[order[i]];
    ++h.other_distinct_;
  }
  return h;
}

double StringHistogram::EstimateEqual(const std::string& s) const {
  for (const Mcv& m : mcvs_) {
    if (m.value == s) return static_cast<double>(m.count);
  }
  if (other_distinct_ == 0) return 0;
  return static_cast<double>(other_count_) /
         static_cast<double>(other_distinct_);
}

void StringHistogram::Encode(Writer& w) const {
  w.PutVarint(static_cast<uint64_t>(total_rows_));
  w.PutVarint(mcvs_.size());
  for (const Mcv& m : mcvs_) {
    w.PutString(m.value);
    w.PutVarint(static_cast<uint64_t>(m.count));
  }
  w.PutVarint(static_cast<uint64_t>(other_count_));
  w.PutVarint(static_cast<uint64_t>(other_distinct_));
}

Result<StringHistogram> StringHistogram::Decode(Reader& r) {
  StringHistogram h;
  SEAWEED_ASSIGN_OR_RETURN(uint64_t total, r.GetVarint());
  h.total_rows_ = static_cast<int64_t>(total);
  SEAWEED_ASSIGN_OR_RETURN(uint64_t n, r.GetVarint());
  if (n > 100000) return Status::ParseError("implausible MCV count");
  for (uint64_t i = 0; i < n; ++i) {
    Mcv m;
    SEAWEED_ASSIGN_OR_RETURN(m.value, r.GetString());
    SEAWEED_ASSIGN_OR_RETURN(uint64_t c, r.GetVarint());
    m.count = static_cast<int64_t>(c);
    h.mcvs_.push_back(std::move(m));
  }
  SEAWEED_ASSIGN_OR_RETURN(uint64_t oc, r.GetVarint());
  SEAWEED_ASSIGN_OR_RETURN(uint64_t od, r.GetVarint());
  h.other_count_ = static_cast<int64_t>(oc);
  h.other_distinct_ = static_cast<int64_t>(od);
  return h;
}

size_t StringHistogram::EncodedBytes() const {
  Writer w;
  Encode(w);
  return w.size();
}

ColumnSummary ColumnSummary::Numeric(std::string column, NumericHistogram h) {
  ColumnSummary s;
  s.column_ = std::move(column);
  s.numeric_ = std::move(h);
  return s;
}

ColumnSummary ColumnSummary::Strings(std::string column, StringHistogram h) {
  ColumnSummary s;
  s.column_ = std::move(column);
  s.strings_ = std::move(h);
  return s;
}

void ColumnSummary::Encode(Writer& w) const {
  w.PutString(column_);
  w.PutU8(is_numeric() ? 0 : 1);
  if (is_numeric()) {
    numeric_->Encode(w);
  } else {
    strings_->Encode(w);
  }
}

Result<ColumnSummary> ColumnSummary::Decode(Reader& r) {
  ColumnSummary s;
  SEAWEED_ASSIGN_OR_RETURN(s.column_, r.GetString());
  SEAWEED_ASSIGN_OR_RETURN(uint8_t kind, r.GetU8());
  if (kind == 0) {
    SEAWEED_ASSIGN_OR_RETURN(NumericHistogram h,
                             NumericHistogram::Decode(r));
    s.numeric_ = std::move(h);
  } else {
    SEAWEED_ASSIGN_OR_RETURN(StringHistogram h,
                             StringHistogram::Decode(r));
    s.strings_ = std::move(h);
  }
  return s;
}

size_t ColumnSummary::EncodedBytes() const {
  Writer w;
  Encode(w);
  return w.size();
}

}  // namespace seaweed::db
