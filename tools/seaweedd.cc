// seaweedd: one shard of a live Seaweed cluster.
//
// The daemon embeds the unmodified seaweed::Node protocol sources over a
// wall-clock EventLoop and UDP SocketTransport (src/net), brings up the
// endsystems its shard owns, and serves the line-JSON query protocol
// (net::QueryService) on its control port. Start P of these with the same
// --endsystems/--seed/--epoch and they form one overlay.
//
//   seaweedd --endsystems 12 --shards 3 --shard 0 --base-port 9400
//            --seed 7 --epoch-us 1754500000000000
//   seaweedd --peers peers.json --shard 1 --seed 7 --epoch-us ...
//
// --reference runs the in-memory simulation oracle instead: the same seed
// and endsystem count inside a single-process SeaweedCluster, one query,
// and the canonical FINAL line on stdout. scripts/loopback_test.sh diffs
// this against the live cluster's answer byte for byte.
#include <signal.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>

#include "net/live_cluster.h"
#include "net/query_service.h"
#include "net/result_format.h"
#include "obs/export.h"
#include "seaweed/cluster.h"

namespace {

using namespace seaweed;

net::EventLoop* g_loop = nullptr;

void HandleSignal(int) {
  // Async-signal-safe: Stop() is a flag store plus a self-pipe write.
  if (g_loop != nullptr) g_loop->Stop();
}

struct Args {
  int endsystems = 12;
  int shards = 1;
  int shard = 0;
  uint16_t base_port = 9400;
  std::string peers_file;
  uint64_t seed = 1;
  int64_t epoch_us = 0;
  std::string profile = "fast";
  int stagger_ms = 200;
  bool batching = false;
  double cache_eps_s = 0;
  int max_active_queries = 0;
  std::string transport;
  bool rejoin = false;
  std::string obs_dump;
  bool reference = false;
  std::string query;
  std::string salt;
  int timeout_s = 600;
};

[[noreturn]] void Usage(const std::string& error) {
  if (!error.empty()) std::cerr << "seaweedd: " << error << "\n";
  std::cerr <<
      "usage: seaweedd [--endsystems N --shards P | --peers FILE] --shard p\n"
      "                [--base-port 9400] [--seed S] [--epoch-us UNIX_US]\n"
      "                [--profile fast|paper] [--stagger-ms MS]\n"
      "                [--batching] [--cache-eps SECS]\n"
      "                [--max-active-queries N] [--obs-dump FILE]\n"
      "                [--transport SPEC] [--rejoin]\n"
      "  --transport: decorators over the udp base, outermost first, e.g.\n"
      "               serializing,faulty:plan.json (counters: net.fault.*)\n"
      "  --rejoin:    warm re-join after a crash — bootstrap this shard's\n"
      "               endsystems through a remote shard instead of the cold\n"
      "               synchronized start (counters: net.rejoins)\n"
      "       seaweedd --reference --query SQL [--endsystems N] [--seed S]\n"
      "                [--timeout-s SECS] [--salt S]\n"
      "  --salt:      pin the query id (aggregation-tree shape) so sketch\n"
      "               aggregates are bit-reproducible against a live run\n"
      "               submitted with the same salt\n";
  exit(error.empty() ? 0 : 2);
}

Args Parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) Usage("missing value for " + flag);
      return argv[++i];
    };
    if (flag == "--endsystems") args.endsystems = std::stoi(value());
    else if (flag == "--shards") args.shards = std::stoi(value());
    else if (flag == "--shard") args.shard = std::stoi(value());
    else if (flag == "--base-port")
      args.base_port = static_cast<uint16_t>(std::stoi(value()));
    else if (flag == "--peers") args.peers_file = value();
    else if (flag == "--seed") args.seed = std::stoull(value());
    else if (flag == "--epoch-us") args.epoch_us = std::stoll(value());
    else if (flag == "--profile") args.profile = value();
    else if (flag == "--stagger-ms") args.stagger_ms = std::stoi(value());
    else if (flag == "--batching") args.batching = true;
    else if (flag == "--cache-eps") args.cache_eps_s = std::stod(value());
    else if (flag == "--max-active-queries")
      args.max_active_queries = std::stoi(value());
    else if (flag == "--transport") args.transport = value();
    else if (flag == "--rejoin") args.rejoin = true;
    else if (flag == "--obs-dump") args.obs_dump = value();
    else if (flag == "--reference") args.reference = true;
    else if (flag == "--query") args.query = value();
    else if (flag == "--salt") args.salt = value();
    else if (flag == "--timeout-s") args.timeout_s = std::stoi(value());
    else if (flag == "--help" || flag == "-h") Usage("");
    else Usage("unknown flag " + flag);
  }
  return args;
}

// Timing profile for live runs. "paper" keeps the simulation defaults
// (30 s heartbeats, 17.5 min summary pushes); "fast" compresses every
// period so a loopback cluster joins and answers within seconds. Timing
// never changes aggregate *values*, only when they arrive.
void ApplyProfile(const std::string& profile, net::LiveConfig* cfg) {
  if (profile == "paper") return;
  if (profile != "fast") {
    std::cerr << "seaweedd: unknown profile \"" << profile
              << "\" (known: fast, paper)\n";
    exit(2);
  }
  cfg->pastry.heartbeat_period = 2 * kSecond;
  cfg->pastry.probe_period = 20 * kSecond;
  cfg->pastry.probe_timeout = kSecond;
  cfg->pastry.join_retry_timeout = kSecond;
  cfg->seaweed.exec_delay = 100 * kMillisecond;
  cfg->seaweed.child_timeout = 2 * kSecond;
  cfg->seaweed.result_ack_timeout = kSecond;
  cfg->seaweed.max_retry_backoff = 5 * kSecond;
  cfg->seaweed.summary_push_period = 30 * kSecond;
  cfg->seaweed.result_refresh_period = 15 * kSecond;
  cfg->seaweed.dissem_refresh_period = 3 * kSecond;
  cfg->seaweed.result_deliver_debounce = 200 * kMillisecond;
  cfg->seaweed.query_sweep_period = kMinute;
}

// --reference: the single-process simulation oracle for the loopback
// differential. Same seed, same endsystem count, same query; prints the
// canonical FINAL line that the live cluster must reproduce.
int RunReference(const Args& args) {
  if (args.query.empty()) Usage("--reference requires --query");
  ClusterConfig config;
  config.num_endsystems = args.endsystems;
  config.seed = args.seed;
  config.keep_tables = true;
  SeaweedCluster cluster(config);
  cluster.BringUpAll();

  Simulator& sim = cluster.sim();
  const SimTime join_deadline = 10 * kMinute;
  while (cluster.CountJoined() < args.endsystems &&
         sim.Now() < join_deadline) {
    sim.RunUntil(sim.Now() + 10 * kSecond);
  }
  if (cluster.CountJoined() < args.endsystems) {
    std::cerr << "reference: only " << cluster.CountJoined() << "/"
              << args.endsystems << " joined\n";
    return 1;
  }

  auto parsed = db::ParseSelect(args.query);
  if (!parsed.ok()) {
    std::cerr << "reference: parse: " << parsed.status().message() << "\n";
    return 1;
  }

  bool done = false;
  std::string final_line;
  QueryObserver observer;
  observer.on_result = [&](const NodeId&, const db::AggregateResult& r) {
    final_line = net::FormatAggregateLine(*parsed, r);
    if (r.endsystems == args.endsystems) done = true;
  };
  auto id = cluster.InjectQuery(0, args.query, std::move(observer),
                                48 * kHour, args.salt);
  if (!id.ok()) {
    std::cerr << "reference: inject: " << id.status().message() << "\n";
    return 1;
  }

  const SimTime limit = sim.Now() + 24 * kHour;
  while (!done && sim.Now() < limit) {
    sim.RunUntil(sim.Now() + kMinute);
  }
  if (!done) {
    std::cerr << "reference: query did not complete in simulated time\n";
    return 1;
  }
  std::cout << final_line << std::endl;
  return 0;
}

int RunDaemon(const Args& args) {
  net::ShardMap map;
  if (!args.peers_file.empty()) {
    auto loaded = net::LoadShardMap(args.peers_file, args.shard);
    if (!loaded.ok()) {
      std::cerr << "seaweedd: " << loaded.status().message() << "\n";
      return 2;
    }
    map = std::move(*loaded);
  } else {
    map = net::MakeLoopbackShardMap(args.endsystems, args.shards, args.shard,
                                    args.base_port);
    Status valid = map.Validate();
    if (!valid.ok()) {
      std::cerr << "seaweedd: " << valid.message() << "\n";
      return 2;
    }
  }

  net::LiveConfig config;
  config.seed = args.seed;
  config.bringup_stagger =
      static_cast<SimDuration>(args.stagger_ms) * kMillisecond;
  ApplyProfile(args.profile, &config);
  if (args.cache_eps_s < 0 || args.max_active_queries < 0) {
    Usage("--cache-eps and --max-active-queries must be >= 0");
  }
  config.seaweed.batching = args.batching;
  config.seaweed.cache_eps =
      static_cast<SimDuration>(args.cache_eps_s * kSecond);
  config.seaweed.max_active_queries = args.max_active_queries;
  config.transport = args.transport;
  config.rejoin = args.rejoin;
  if (args.rejoin && map.num_shards() < 2) {
    Usage("--rejoin needs a remote shard to bootstrap through");
  }

  net::EventLoop loop(args.epoch_us);
  g_loop = &loop;
  signal(SIGINT, HandleSignal);
  signal(SIGTERM, HandleSignal);
  signal(SIGPIPE, SIG_IGN);

  net::LiveCluster cluster(&loop, map, config);
  const uint16_t control_port =
      map.peers[static_cast<size_t>(map.self_shard)].control_port;
  net::QueryService service(&cluster, control_port);
  cluster.BringUpLocal();

  std::cerr << "seaweedd: shard " << map.self_shard << "/" << map.num_shards()
            << " endsystems=" << map.num_endsystems
            << " local=" << map.LocalEndsystems().size()
            << " udp=" << map.peers[static_cast<size_t>(map.self_shard)].udp_port
            << " control=" << control_port << " seed=" << args.seed
            << (args.rejoin ? " rejoin=1" : "")
            << (args.transport.empty() ? ""
                                       : " transport=" + args.transport)
            << "\n";

  loop.Run();
  g_loop = nullptr;

  if (!args.obs_dump.empty()) {
    Status st = obs::DumpToFile(&cluster.obs().metrics, &cluster.obs().trace,
                                args.obs_dump);
    if (!st.ok()) {
      std::cerr << "seaweedd: obs dump: " << st.message() << "\n";
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = Parse(argc, argv);
  if (args.reference) return RunReference(args);
  return RunDaemon(args);
}
