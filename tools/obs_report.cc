// obs_report: renders the JSONL observability dump written by
// obs::DumpToFile (e.g. by bench/fig9_overheads, or any SeaweedCluster user
// via bench::DumpObs / SEAWEED_OBS_DUMP) as a human-readable run report:
//
//   - run summary (messages, peak population, event-queue depth)
//   - per-category bandwidth breakdown (from the "bw.tx.*" / "bw.rx.*"
//     timeseries — the same storage BandwidthMeter accounts into, so the
//     totals here equal the meter's byte-for-byte)
//   - per-query report (egress bytes from "query.<id>.tx_bytes",
//     time-to-predictor / time-to-result from "disseminate" /
//     "result_delivery" trace spans, metadata-lookup cache hits)
//   - multi-tenant pipeline counters (dissemination batching, predictor
//     cache, admission control) when any are nonzero
//   - repair / recovery counters (leafset repairs, metadata re-replication,
//     aggregation-tree handovers and re-propagations)
//   - latency and size histograms
//
// Usage: obs_report <dump.jsonl>
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/time_types.h"
#include "obs/jsonl_reader.h"

namespace {

using seaweed::FormatDuration;
using seaweed::SimTime;
using seaweed::obs::Json;

struct HistData {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  std::vector<std::pair<int, uint64_t>> buckets;  // (bit_width, count)
};

struct TsData {
  int64_t bucket_us = 0;
  uint64_t total = 0;
  std::vector<uint64_t> buckets;
};

struct SpanData {
  uint64_t id = 0;
  uint64_t parent = 0;
  std::string trace;
  std::string name;
  SimTime start = 0;
  SimTime end = -1;  // -1 = still open in the dump
  std::string query;  // "query" attr when present
  std::string kind;
  std::string sql;
  bool cache_hit = false;  // "cache_hit" attr on metadata_lookup spans
};

struct Dump {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, std::pair<int64_t, int64_t>> gauges;  // value, max
  std::map<std::string, HistData> histograms;
  std::map<std::string, TsData> timeseries;
  std::vector<SpanData> spans;
};

uint64_t CounterOr0(const Dump& d, const std::string& name) {
  auto it = d.counters.find(name);
  return it != d.counters.end() ? it->second : 0;
}

// Approximate quantile from the log2 buckets, mirroring
// obs::Histogram::ApproxQuantile (upper bound of the covering bucket,
// clamped to the observed max).
uint64_t HistQuantile(const HistData& h, double q) {
  if (h.count == 0) return 0;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(h.count));
  if (rank >= h.count) rank = h.count - 1;
  uint64_t seen = 0;
  for (const auto& [bit_width, count] : h.buckets) {
    seen += count;
    if (seen > rank) {
      uint64_t upper =
          bit_width >= 64 ? ~0ULL : (1ULL << bit_width) - 1;
      return std::min(upper, h.max);
    }
  }
  return h.max;
}

bool LoadDump(const char* path, Dump* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "obs_report: cannot open %s\n", path);
    return false;
  }
  auto lines = seaweed::obs::ParseJsonLines(in);
  if (!lines.ok()) {
    std::fprintf(stderr, "obs_report: %s: %s\n", path,
                 std::string(lines.status().message()).c_str());
    return false;
  }
  for (const Json& j : lines.value()) {
    const Json* kind = j.Find("kind");
    const Json* name = j.Find("name");
    if (kind == nullptr || name == nullptr) continue;
    const std::string& k = kind->AsString();
    if (k == "counter") {
      const Json* v = j.Find("value");
      out->counters[name->AsString()] = v != nullptr ? v->AsUint() : 0;
    } else if (k == "gauge") {
      const Json* v = j.Find("value");
      const Json* m = j.Find("max");
      out->gauges[name->AsString()] = {v != nullptr ? v->AsInt() : 0,
                                       m != nullptr ? m->AsInt() : 0};
    } else if (k == "histogram") {
      HistData h;
      if (const Json* f = j.Find("count")) h.count = f->AsUint();
      if (const Json* f = j.Find("sum")) h.sum = f->AsUint();
      if (const Json* f = j.Find("min")) h.min = f->AsUint();
      if (const Json* f = j.Find("max")) h.max = f->AsUint();
      if (const Json* f = j.Find("buckets")) {
        for (const Json& b : f->items) {
          if (b.items.size() == 2) {
            h.buckets.emplace_back(static_cast<int>(b.items[0].AsInt()),
                                   b.items[1].AsUint());
          }
        }
      }
      out->histograms[name->AsString()] = std::move(h);
    } else if (k == "timeseries") {
      TsData ts;
      if (const Json* f = j.Find("bucket_us")) ts.bucket_us = f->AsInt();
      if (const Json* f = j.Find("total")) ts.total = f->AsUint();
      if (const Json* f = j.Find("buckets")) {
        for (const Json& b : f->items) ts.buckets.push_back(b.AsUint());
      }
      out->timeseries[name->AsString()] = std::move(ts);
    } else if (k == "span") {
      SpanData s;
      if (const Json* f = j.Find("id")) s.id = f->AsUint();
      if (const Json* f = j.Find("parent")) s.parent = f->AsUint();
      if (const Json* f = j.Find("trace")) s.trace = f->AsString();
      s.name = name->AsString();
      if (const Json* f = j.Find("start")) s.start = f->AsInt();
      const Json* end = j.Find("end");
      s.end = (end != nullptr && !end->is_null()) ? end->AsInt() : -1;
      if (const Json* attrs = j.Find("attrs")) {
        if (const Json* q = attrs->Find("query")) s.query = q->AsString();
        if (const Json* q = attrs->Find("kind")) s.kind = q->AsString();
        if (const Json* q = attrs->Find("sql")) s.sql = q->AsString();
        if (const Json* q = attrs->Find("cache_hit"))
          s.cache_hit = q->AsInt() != 0;
      }
      out->spans.push_back(std::move(s));
    }
  }
  return true;
}

void PrintRunSummary(const Dump& d) {
  std::printf("== run summary ==\n");
  // A simulation dump carries sim.* message counters; a live seaweedd dump
  // carries net.* datagram counters instead. Print whichever transport the
  // dump came from.
  if (d.counters.count("net.datagrams_tx") != 0) {
    std::printf("  datagrams: %" PRIu64 " tx, %" PRIu64
                " rx (%" PRIu64 " decode rejects, %" PRIu64
                " oversize drops, %" PRIu64 " send errors)\n",
                CounterOr0(d, "net.datagrams_tx"),
                CounterOr0(d, "net.datagrams_rx"),
                CounterOr0(d, "net.decode_rejects"),
                CounterOr0(d, "net.oversize_drops"),
                CounterOr0(d, "net.send_errors"));
    if (CounterOr0(d, "net.tx_fragmented") != 0 ||
        CounterOr0(d, "net.frags_rx") != 0) {
      std::printf("  fragmentation: %" PRIu64 " messages split, %" PRIu64
                  " fragments rx, %" PRIu64 " reassembled, %" PRIu64
                  " reassembly drops\n",
                  CounterOr0(d, "net.tx_fragmented"),
                  CounterOr0(d, "net.frags_rx"),
                  CounterOr0(d, "net.reassembled"),
                  CounterOr0(d, "net.reassembly_drops"));
    }
    if (CounterOr0(d, "net.rejoins") != 0) {
      std::printf("  warm rejoins: %" PRIu64 "\n",
                  CounterOr0(d, "net.rejoins"));
    }
    // A live daemon run under `--transport faulty:<plan>` registers
    // net.fault.* at startup; surface the injected chaos next to the
    // datagram totals it distorted.
    if (d.counters.count("net.fault.burst_drops") != 0) {
      std::printf("  fault injection: %" PRIu64 " burst drops, %" PRIu64
                  " partition drops, %" PRIu64 " delayed\n",
                  CounterOr0(d, "net.fault.burst_drops"),
                  CounterOr0(d, "net.fault.partition_drops"),
                  CounterOr0(d, "net.fault.delayed"));
    }
  } else {
    std::printf("  messages: %" PRIu64 " sent, %" PRIu64
                " delivered, %" PRIu64 " lost\n",
                CounterOr0(d, "sim.msgs_sent"),
                CounterOr0(d, "sim.msgs_delivered"),
                CounterOr0(d, "sim.msgs_lost"));
  }
  if (d.counters.count("server.requests") != 0) {
    std::printf("  control plane: %" PRIu64 " requests (%" PRIu64
                " bad), %" PRIu64 " queries submitted, %" PRIu64
                " events pushed\n",
                CounterOr0(d, "server.requests"),
                CounterOr0(d, "server.bad_requests"),
                CounterOr0(d, "server.queries_submitted"),
                CounterOr0(d, "server.events_pushed"));
  }
  if (auto it = d.gauges.find("sim.online_endsystems"); it != d.gauges.end()) {
    std::printf("  online endsystems: %" PRId64 " at dump, peak %" PRId64 "\n",
                it->second.first, it->second.second);
  }
  if (auto it = d.gauges.find("sim.event_queue_depth");
      it != d.gauges.end()) {
    std::printf("  event queue depth: %" PRId64 " at dump, peak %" PRId64 "\n",
                it->second.first, it->second.second);
  }
  std::printf("  overlay: %" PRIu64 " joins, %" PRIu64 " heartbeats, %" PRIu64
              " routed deliveries\n",
              CounterOr0(d, "overlay.joins"),
              CounterOr0(d, "overlay.heartbeats"),
              CounterOr0(d, "overlay.routed_delivered"));
  std::printf("  queries injected: %" PRIu64 "\n",
              CounterOr0(d, "seaweed.queries_injected"));
}

// The category rows come from the "bw.tx.<cat>" / "bw.rx.<cat>" timeseries.
// BandwidthMeter records into these same instruments, so the per-category
// bytes and the totals printed here match the meter exactly; the
// "total_bytes" counters are independent instruments and serve as the
// cross-check.
void PrintBandwidth(const Dump& d) {
  std::printf("\n== bandwidth by category ==\n");
  std::printf("  %-14s %16s %16s %8s\n", "category", "tx bytes", "rx bytes",
              "tx %");
  uint64_t tx_sum = 0, rx_sum = 0;
  std::vector<std::pair<std::string, std::pair<uint64_t, uint64_t>>> rows;
  for (const auto& [name, ts] : d.timeseries) {
    if (name.rfind("bw.tx.", 0) != 0) continue;
    std::string cat = name.substr(6);
    uint64_t rx = 0;
    if (auto it = d.timeseries.find("bw.rx." + cat);
        it != d.timeseries.end()) {
      rx = it->second.total;
    }
    rows.push_back({cat, {ts.total, rx}});
    tx_sum += ts.total;
    rx_sum += rx;
  }
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.first > b.second.first;
  });
  for (const auto& [cat, bytes] : rows) {
    std::printf("  %-14s %16" PRIu64 " %16" PRIu64 " %7.2f%%\n", cat.c_str(),
                bytes.first, bytes.second,
                tx_sum > 0 ? 100.0 * static_cast<double>(bytes.first) /
                                 static_cast<double>(tx_sum)
                           : 0.0);
  }
  std::printf("  %-14s %16" PRIu64 " %16" PRIu64 "\n", "total", tx_sum,
              rx_sum);
  uint64_t tx_counter = CounterOr0(d, "bw.tx.total_bytes");
  uint64_t rx_counter = CounterOr0(d, "bw.rx.total_bytes");
  bool ok = tx_sum == tx_counter && rx_sum == rx_counter;
  std::printf("  cross-check vs meter counters: tx %" PRIu64 ", rx %" PRIu64
              " -> %s\n",
              tx_counter, rx_counter, ok ? "match" : "MISMATCH");
}

// Per trace: query label from the root "query" span, latencies from the
// closed "disseminate" (injection -> first aggregated predictor) and
// "result_delivery" (injection -> first delivered result) child spans,
// egress bytes from the per-query "query.<id>.tx_bytes" counter that
// SeaweedNode charges every descriptor, retry, and aggregation send to
// (batched descriptors are charged their per-entry share of the batch
// frame, so the column stays meaningful with dissemination batching on).
void PrintPerQuery(const Dump& d, size_t top_n) {
  struct QueryInfo {
    std::string query;
    std::string kind;
    std::string sql;
    SimTime dissem = -1;
    SimTime result = -1;
    uint64_t tx_bytes = 0;
    int aggregation_rounds = 0;
    int predictor_merges = 0;
    int lookups = 0;
    int lookup_cache_hits = 0;
  };
  std::unordered_map<std::string, QueryInfo> by_trace;
  for (const SpanData& s : d.spans) {
    QueryInfo& q = by_trace[s.trace];
    if (s.name == "query") {
      if (!s.query.empty()) q.query = s.query;
      q.kind = s.kind;
      q.sql = s.sql;
    } else if (s.name == "disseminate" && s.end >= 0) {
      q.dissem = s.end - s.start;
    } else if (s.name == "result_delivery" && s.end >= 0) {
      q.result = s.end - s.start;
    } else if (s.name == "aggregation_round") {
      ++q.aggregation_rounds;
    } else if (s.name == "predictor_merge") {
      ++q.predictor_merges;
    } else if (s.name == "metadata_lookup") {
      ++q.lookups;
      if (s.cache_hit) ++q.lookup_cache_hits;
    }
  }
  std::vector<QueryInfo> queries;
  for (auto& [trace, q] : by_trace) {
    if (q.query.empty()) q.query = trace.substr(0, 8);
    q.tx_bytes = CounterOr0(d, "query." + q.query + ".tx_bytes");
    if (q.dissem >= 0 || q.result >= 0) queries.push_back(std::move(q));
  }
  std::printf("\n== per-query report ==\n");
  if (queries.empty()) {
    std::printf("  (no closed query-lifecycle spans in dump)\n");
    return;
  }
  std::sort(queries.begin(), queries.end(),
            [](const QueryInfo& a, const QueryInfo& b) {
              return std::max(a.result, a.dissem) >
                     std::max(b.result, b.dissem);
            });
  std::printf("  %-10s %-14s %12s %14s %14s %7s %7s %10s\n", "query", "kind",
              "tx bytes", "predictor", "result", "rounds", "merges",
              "lookups");
  uint64_t tx_total = 0;
  for (size_t i = 0; i < queries.size() && i < top_n; ++i) {
    const QueryInfo& q = queries[i];
    char lookups[32];
    std::snprintf(lookups, sizeof(lookups), "%d (%d hit)", q.lookups,
                  q.lookup_cache_hits);
    std::printf("  %-10s %-14s %12" PRIu64 " %14s %14s %7d %7d %10s\n",
                q.query.c_str(), q.kind.c_str(), q.tx_bytes,
                q.dissem >= 0 ? FormatDuration(q.dissem).c_str() : "-",
                q.result >= 0 ? FormatDuration(q.result).c_str() : "-",
                q.aggregation_rounds, q.predictor_merges, lookups);
    if (!q.sql.empty()) std::printf("      sql: %s\n", q.sql.c_str());
  }
  for (const QueryInfo& q : queries) tx_total += q.tx_bytes;
  if (queries.size() > top_n) {
    std::printf("  ... %zu more queries\n", queries.size() - top_n);
  }
  std::printf("  %zu queries, %" PRIu64
              " attributed tx bytes (query.*.tx_bytes)\n",
              queries.size(), tx_total);
}

// Multi-tenant pipeline counters: dissemination batching, the
// bounded-divergence predictor cache, and admission control. All zeros
// on a run with the pipeline off — the knobs default to no-op.
void PrintPipeline(const Dump& d) {
  const uint64_t flushes = CounterOr0(d, "seaweed.batch_flushes");
  const uint64_t entries = CounterOr0(d, "seaweed.batch_entries");
  const uint64_t hits = CounterOr0(d, "seaweed.pred_cache_hits");
  const uint64_t misses = CounterOr0(d, "seaweed.pred_cache_misses");
  const uint64_t shed = CounterOr0(d, "server.queries_shed");
  if (flushes + entries + hits + misses + shed == 0) return;
  std::printf("\n== multi-tenant pipeline ==\n");
  std::printf("  %-36s %12" PRIu64 "\n", "batch flushes", flushes);
  std::printf("  %-36s %12" PRIu64 "\n", "batched descriptors", entries);
  if (flushes > 0) {
    std::printf("  %-36s %12.2f\n", "descriptors per batch",
                static_cast<double>(entries) / static_cast<double>(flushes));
  }
  std::printf("  %-36s %12" PRIu64 "\n", "predictor cache hits", hits);
  std::printf("  %-36s %12" PRIu64 "\n", "predictor cache misses", misses);
  if (hits + misses > 0) {
    std::printf("  %-36s %11.1f%%\n", "predictor cache hit rate",
                100.0 * static_cast<double>(hits) /
                    static_cast<double>(hits + misses));
  }
  std::printf("  %-36s %12" PRIu64 "\n", "queries load-shed", shed);
}

void PrintSketches(const Dump& d) {
  const uint64_t results = CounterOr0(d, "seaweed.sketch.results");
  const uint64_t merges = CounterOr0(d, "seaweed.sketch.merges");
  const uint64_t bytes = CounterOr0(d, "seaweed.sketch.state_bytes");
  if (results + merges + bytes == 0) return;  // no approximate queries ran
  std::printf("\n== approximate aggregates (sketches) ==\n");
  std::printf("  %-36s %12" PRIu64 "\n", "leaf results with sketch states",
              results);
  std::printf("  %-36s %12" PRIu64 "\n", "interior sketch folds", merges);
  std::printf("  %-36s %12" PRIu64 "\n", "sketch bytes on wire", bytes);
  if (results + merges > 0) {
    std::printf("  %-36s %12.1f\n", "sketch bytes per carrying result",
                static_cast<double>(bytes) /
                    static_cast<double>(results + merges));
  }
}

void PrintRepairs(const Dump& d) {
  std::printf("\n== repairs and recovery ==\n");
  const std::pair<const char*, const char*> kRepairs[] = {
      {"overlay.leafset_repairs", "leafset repairs"},
      {"seaweed.metadata_rereplications", "metadata re-replications"},
      {"seaweed.vertex_handovers", "aggregation-tree vertex handovers"},
      {"seaweed.vertex_repropagations", "aggregation-tree re-propagations"},
      {"seaweed.dissem_reissues", "dissemination re-issues"},
      {"seaweed.dissem_refreshes", "dissemination refreshes"},
      {"seaweed.leaf_retries", "leaf-result retries"},
      {"overlay.hop_limit_drops", "hop-limit drops"},
  };
  for (const auto& [name, label] : kRepairs) {
    std::printf("  %-36s %12" PRIu64 "\n", label, CounterOr0(d, name));
  }
}

void PrintHistograms(const Dump& d) {
  if (d.histograms.empty()) return;
  std::printf("\n== histograms ==\n");
  std::printf("  %-30s %10s %12s %10s %10s %10s\n", "name", "count", "mean",
              "p50", "p99", "max");
  for (const auto& [name, h] : d.histograms) {
    if (h.count == 0) continue;
    std::printf("  %-30s %10" PRIu64 " %12.1f %10" PRIu64 " %10" PRIu64
                " %10" PRIu64 "\n",
                name.c_str(), h.count,
                static_cast<double>(h.sum) / static_cast<double>(h.count),
                HistQuantile(h, 0.5), HistQuantile(h, 0.99), h.max);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2 || std::strcmp(argv[1], "--help") == 0) {
    std::fprintf(stderr,
                 "usage: obs_report <dump.jsonl>\n"
                 "  dump.jsonl: written by bench/fig9_overheads (or any run "
                 "with SEAWEED_OBS_DUMP set)\n");
    return argc == 2 ? 0 : 2;
  }
  Dump dump;
  if (!LoadDump(argv[1], &dump)) return 1;
  std::printf("obs_report: %s\n\n", argv[1]);
  PrintRunSummary(dump);
  PrintBandwidth(dump);
  PrintPerQuery(dump, /*top_n=*/10);
  PrintPipeline(dump);
  PrintSketches(dump);
  PrintRepairs(dump);
  PrintHistograms(dump);
  return 0;
}
