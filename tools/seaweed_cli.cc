// seaweed-cli: command-line client for seaweedd's line-JSON control port.
//
//   seaweed-cli [--host H] [--port P] submit "SELECT ..." [--ttl-s N]
//   seaweed-cli ... query "SELECT ..." [--timeout-s N] [--no-check-monotone]
//                   [--max-reconnect-s N]
//   seaweed-cli ... status <query_id>
//   seaweed-cli ... cancel <query_id>
//   seaweed-cli ... stats
//   seaweed-cli ... drop-clients
//   seaweed-cli ... shutdown
//
// `query` is the end-to-end verb the loopback harness drives: submit, then
// stream predictor/result events until the aggregate covers every
// endsystem, checking on the way that the §2.1 delay-aware contract holds —
// the predicted row total and the covered-endsystem count must both grow
// monotonically, and the covered count can never exceed the population
// (never-overcount). The canonical FINAL line is the last thing on stdout,
// so `seaweed-cli query ... | tail -1` is directly diffable against
// `seaweedd --reference`.
//
// A dropped control connection mid-stream is survivable: the client
// reconnects with bounded exponential backoff and re-issues `stream` for
// the same query id — the daemon's replay-on-subscribe makes that
// idempotent, and the monotonicity state carries across the reconnect (the
// replayed snapshot must be >= everything seen before the drop). Exit
// codes: 0 complete, 1 timeout/daemon error, 2 usage, 3 delay-aware
// contract violation (non-monotone or overcount), 4 server gone for good
// (reconnect budget exhausted, or the daemon restarted without our query).
//
// Every request carries the protocol version ("v":1); a daemon speaking a
// different version refuses it with a distinct mismatch error, reported
// here as exit 1 with an "upgrade whichever side is older" message. The
// full wire contract lives in PROTOCOL.md.
#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "net/query_service.h"
#include "obs/jsonl_reader.h"

namespace {

using namespace seaweed;

[[noreturn]] void Usage(const std::string& error) {
  if (!error.empty()) std::cerr << "seaweed-cli: " << error << "\n";
  std::cerr <<
      "usage: seaweed-cli [--host 127.0.0.1] [--port 9500] COMMAND ...\n"
      "  submit SQL [--ttl-s N] [--salt S]\n"
      "                           inject a query, print its id; --salt pins\n"
      "                           the query id (and so the aggregation-tree\n"
      "                           shape) for differential testing\n"
      "  query SQL [--timeout-s N] [--no-check-monotone]\n"
      "            [--max-reconnect-s N] [--salt S]\n"
      "                           inject and stream until complete;\n"
      "                           prints the canonical FINAL line last;\n"
      "                           reconnects + resubscribes on a dropped\n"
      "                           connection (exit 4 = server gone for good,\n"
      "                           exit 3 = non-monotone or overcounting\n"
      "                           stream)\n"
      "  status QUERY_ID          one status snapshot\n"
      "  cancel QUERY_ID          cancel an active query\n"
      "  stats                    daemon counters as JSON\n"
      "  drop-clients             sever every control connection (chaos)\n"
      "  shutdown                 stop the daemon\n";
  exit(error.empty() ? 0 : 2);
}

class Client {
 public:
  Client(const std::string& host, uint16_t port) : host_(host), port_(port) {
    const char* h = host_ == "localhost" ? "127.0.0.1" : host_.c_str();
    memset(&addr_, 0, sizeof(addr_));
    addr_.sin_family = AF_INET;
    addr_.sin_port = htons(port_);
    if (inet_pton(AF_INET, h, &addr_.sin_addr) != 1) {
      Fail("bad host (IPv4 dotted quad expected): " + host_);
    }
  }
  ~Client() { Close(); }

  bool connected() const { return fd_ >= 0; }

  // Opens (or re-opens) the TCP connection; false on failure. Any buffered
  // partial line from a previous connection is discarded — the daemon's
  // protocol is line-delimited and a torn line is unusable.
  bool TryConnect() {
    Close();
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    if (connect(fd_, reinterpret_cast<sockaddr*>(&addr_), sizeof(addr_)) !=
        0) {
      Close();
      return false;
    }
    if (recv_timeout_s_ > 0) SetRecvTimeout(recv_timeout_s_);
    return true;
  }

  void ConnectOrDie() {
    if (!TryConnect()) {
      Fail("cannot connect to " + host_ + ":" + std::to_string(port_));
    }
  }

  void Close() {
    if (fd_ >= 0) close(fd_);
    fd_ = -1;
    buf_.clear();
  }

  // False on any connection error (the fd is closed so connected() turns
  // false); callers decide between failover and death.
  bool TrySendLine(const std::string& json) {
    if (fd_ < 0) return false;
    std::string line = json + "\n";
    size_t off = 0;
    while (off < line.size()) {
      ssize_t n = send(fd_, line.data() + off, line.size() - off,
                       MSG_NOSIGNAL);
      if (n <= 0) {
        Close();
        return false;
      }
      off += static_cast<size_t>(n);
    }
    return true;
  }

  void SendLine(const std::string& json) {
    if (!TrySendLine(json)) Fail("send failed");
  }

  // Blocks until one full line arrives; exits on EOF/timeout.
  std::string RecvLine() {
    std::string line;
    if (TryRecvLine(&line) != RecvResult::kLine) {
      Fail("connection closed by daemon");
    }
    return line;
  }

  enum class RecvResult { kLine, kTimeout, kClosed };

  // kTimeout when the recv timeout (SetRecvTimeout) elapses with no full
  // line, so callers can poll a deadline of their own; kClosed on EOF or
  // error (the fd is closed).
  RecvResult TryRecvLine(std::string* line) {
    if (fd_ < 0) return RecvResult::kClosed;
    while (true) {
      size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        *line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return RecvResult::kLine;
      }
      char chunk[8192];
      ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return RecvResult::kTimeout;
      }
      if (n <= 0) {
        Close();
        return RecvResult::kClosed;
      }
      buf_.append(chunk, static_cast<size_t>(n));
    }
  }

  obs::Json Request(const std::string& json) {
    SendLine(json);
    return ParsedLine(RecvLine());
  }

  obs::Json ParsedLine(const std::string& line) {
    auto parsed = obs::ParseJson(line);
    if (!parsed.ok()) Fail("bad response: " + line);
    return std::move(*parsed);
  }

  void SetRecvTimeout(int seconds) {
    recv_timeout_s_ = seconds;
    if (fd_ < 0) return;
    timeval tv{seconds, 0};
    setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }

 private:
  [[noreturn]] void Fail(const std::string& msg) {
    std::cerr << "seaweed-cli: " << msg << "\n";
    exit(1);
  }

  std::string host_;
  uint16_t port_;
  sockaddr_in addr_;
  int recv_timeout_s_ = 0;
  int fd_ = -1;
  std::string buf_;
};

// Every request leads with the protocol version so a mismatched daemon can
// refuse it before interpreting anything else (see PROTOCOL.md).
std::string ReqHead(const std::string& op) {
  return "{\"v\":" + std::to_string(net::kProtocolVersion) + ",\"op\":\"" +
         op + "\"";
}

// Exits non-zero unless the response says ok:true. A protocol-version
// refusal gets its own message — "upgrade one side" is actionable in a way
// a generic daemon error is not.
const obs::Json& CheckOk(const obs::Json& resp) {
  const obs::Json* ok = resp.Find("ok");
  if (ok == nullptr || !ok->b) {
    const obs::Json* mismatch = resp.Find("mismatch");
    if (mismatch != nullptr && mismatch->b) {
      const obs::Json* sv = resp.Find("server_v");
      std::cerr << "seaweed-cli: protocol version mismatch: this client "
                   "speaks v" << net::kProtocolVersion << ", the daemon v"
                << (sv != nullptr ? std::to_string(sv->AsInt()) : "?")
                << " — upgrade whichever side is older\n";
      exit(1);
    }
    const obs::Json* err = resp.Find("error");
    std::cerr << "seaweed-cli: daemon error: "
              << (err != nullptr ? err->AsString() : "unknown") << "\n";
    exit(1);
  }
  return resp;
}

std::string SubmitJson(const std::string& sql, int ttl_s,
                       const std::string& salt) {
  std::string req = ReqHead("submit") + ",\"sql\":\"" + net::JsonEscape(sql) +
                    "\"";
  if (ttl_s > 0) req += ",\"ttl_s\":" + std::to_string(ttl_s);
  if (!salt.empty()) req += ",\"salt\":\"" + net::JsonEscape(salt) + "\"";
  req += "}";
  return req;
}

// How long to keep the stream open for a completeness predictor after the
// final aggregate already arrived.
constexpr int kPredictorGraceS = 15;

// Reconnect backoff bounds: 250 ms doubling to a 4 s ceiling.
constexpr long kBackoffFirstMs = 250;
constexpr long kBackoffCapMs = 4000;

void SleepMs(long ms) {
  timespec ts{ms / 1000, (ms % 1000) * 1000000L};
  nanosleep(&ts, nullptr);
}

// Reconnects and re-issues `stream` for `qid`, with bounded exponential
// backoff, for up to `budget_s` seconds (and never past `deadline`).
// Returns true once resubscribed. A daemon that answers but no longer
// knows the query restarted without our state: that is "server gone for
// good", reported through `query_lost`.
bool ReconnectAndResubscribe(Client& client, const std::string& qid,
                             int budget_s, time_t deadline,
                             bool* query_lost) {
  *query_lost = false;
  const time_t give_up_base = time(nullptr) + budget_s;
  long backoff_ms = kBackoffFirstMs;
  int attempt = 0;
  while (true) {
    const time_t give_up = give_up_base < deadline ? give_up_base : deadline;
    if (time(nullptr) >= give_up) return false;
    ++attempt;
    if (client.TryConnect()) {
      std::string resp_line;
      if (client.TrySendLine(ReqHead("stream") + ",\"query_id\":\"" + qid +
                             "\"}") &&
          client.TryRecvLine(&resp_line) == Client::RecvResult::kLine) {
        const obs::Json resp = client.ParsedLine(resp_line);
        const obs::Json* ok = resp.Find("ok");
        if (ok != nullptr && ok->b) {
          std::cerr << "seaweed-cli: reconnected (attempt " << attempt
                    << ")\n";
          return true;
        }
        // The daemon is alive but our query does not exist there any more
        // (cold restart): no amount of retrying brings the state back.
        *query_lost = true;
        return false;
      }
      // Connected but the resubscribe round trip failed: treat like a
      // failed connect and back off.
    }
    SleepMs(backoff_ms);
    backoff_ms = backoff_ms * 2 < kBackoffCapMs ? backoff_ms * 2
                                                : kBackoffCapMs;
  }
}

int RunQuery(Client& client, const std::string& sql, int ttl_s, int timeout_s,
             bool check_monotone, int max_reconnect_s,
             const std::string& salt) {
  client.ConnectOrDie();
  const obs::Json resp =
      CheckOk(client.Request(SubmitJson(sql, ttl_s, salt)));
  const std::string qid = resp.Find("query_id")->AsString();
  std::cerr << "query_id=" << qid
            << " origin=" << resp.Find("origin")->AsInt() << "\n";
  CheckOk(client.Request(ReqHead("stream") + ",\"query_id\":\"" + qid +
                         "\"}"));

  // Short recv timeout so the loop can re-check its deadlines even when
  // the daemon is quiet between push events.
  client.SetRecvTimeout(2);
  time_t deadline = time(nullptr) + (timeout_s > 0 ? timeout_s : 600);

  double prev_rows = -1;
  int64_t prev_endsystems = -1;
  int predictor_events = 0;
  bool complete = false;
  std::string final_line;
  // Stream until the aggregate covers every endsystem AND the delay-aware
  // half of the protocol has shown up: at least one completeness predictor
  // (in fast profiles the predictor can trail the final result). The
  // predictor deliver is a single unacked datagram, so once the result is
  // complete we only linger a short grace window for it rather than the
  // whole deadline.
  while (time(nullptr) < deadline && !(complete && predictor_events > 0)) {
    std::string raw;
    const Client::RecvResult rr = client.TryRecvLine(&raw);
    if (rr == Client::RecvResult::kTimeout) continue;
    if (rr == Client::RecvResult::kClosed) {
      // The daemon (or its network) dropped us mid-stream. The query keeps
      // executing server-side; reconnect and resubscribe — the replayed
      // snapshot re-enters this loop through the normal event path, so the
      // monotonicity state survives the outage.
      std::cerr << "seaweed-cli: connection lost, reconnecting\n";
      bool query_lost = false;
      if (!ReconnectAndResubscribe(client, qid, max_reconnect_s, deadline,
                                   &query_lost)) {
        std::cerr << "seaweed-cli: server gone for good ("
                  << (query_lost ? "daemon no longer knows this query"
                                 : "reconnect budget exhausted")
                  << ")\n";
        return 4;
      }
      continue;
    }
    const obs::Json ev = client.ParsedLine(raw);
    const obs::Json* kind = ev.Find("event");
    if (kind == nullptr) continue;
    if (kind->AsString() == "predictor") {
      const double rows = ev.Find("total_rows")->AsDouble();
      const int64_t endsystems = ev.Find("endsystems")->AsInt();
      std::cerr << ev.Find("line")->AsString() << "\n";
      ++predictor_events;
      if (check_monotone) {
        // Allow a hair of float slack on rows: predictors merge doubles.
        if (rows < prev_rows - 1e-6 || endsystems < prev_endsystems) {
          std::cerr << "seaweed-cli: MONOTONICITY VIOLATION: rows "
                    << prev_rows << " -> " << rows << ", endsystems "
                    << prev_endsystems << " -> " << endsystems << "\n";
          return 3;
        }
        prev_rows = rows;
        prev_endsystems = endsystems;
      }
    } else if (kind->AsString() == "result") {
      const obs::Json* final_field = ev.Find("final");
      if (final_field != nullptr) final_line = final_field->AsString();
      const int64_t got = ev.Find("endsystems")->AsInt();
      const int64_t total = ev.Find("total")->AsInt();
      std::cerr << "result: endsystems=" << got << "/" << total << "\n";
      if (check_monotone && got > total) {
        // Never-overcount is the paper's hard consistency property: a
        // result claiming more endsystems than exist means some endsystem
        // was double-counted.
        std::cerr << "seaweed-cli: OVERCOUNT VIOLATION: " << got << "/"
                  << total << " endsystems\n";
        return 3;
      }
      const obs::Json* complete_field = ev.Find("complete");
      const bool was_complete = complete;
      complete = complete_field != nullptr && complete_field->b;
      if (complete && !was_complete) {
        const time_t grace = time(nullptr) + kPredictorGraceS;
        if (grace < deadline) deadline = grace;
      }
    }
  }
  if (complete) {
    if (predictor_events == 0) {
      std::cerr << "seaweed-cli: warning: no predictor event before the "
                   "deadline\n";
    }
    std::cout << final_line << std::endl;
    return 0;
  }
  std::cerr << "seaweed-cli: timed out waiting for completion\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 9500;
  std::string command;
  std::string arg;
  int ttl_s = 0;
  int timeout_s = 600;
  int max_reconnect_s = 30;
  bool check_monotone = true;
  std::string salt;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) Usage("missing value for " + flag);
      return argv[++i];
    };
    if (flag == "--host") host = value();
    else if (flag == "--port") port = static_cast<uint16_t>(std::stoi(value()));
    else if (flag == "--ttl-s") ttl_s = std::stoi(value());
    else if (flag == "--timeout-s") timeout_s = std::stoi(value());
    else if (flag == "--max-reconnect-s") max_reconnect_s = std::stoi(value());
    else if (flag == "--salt") salt = value();
    else if (flag == "--no-check-monotone") check_monotone = false;
    else if (flag == "--help" || flag == "-h") Usage("");
    else if (command.empty()) command = flag;
    else if (arg.empty()) arg = flag;
    else Usage("unexpected argument " + flag);
  }
  if (command.empty()) Usage("missing command");

  Client client(host, port);

  if (command == "query") {
    if (arg.empty()) Usage("query needs a SQL string");
    return RunQuery(client, arg, ttl_s, timeout_s, check_monotone,
                    max_reconnect_s, salt);
  }

  client.ConnectOrDie();

  if (command == "submit") {
    if (arg.empty()) Usage("submit needs a SQL string");
    const obs::Json resp =
        CheckOk(client.Request(SubmitJson(arg, ttl_s, salt)));
    std::cout << resp.Find("query_id")->AsString() << std::endl;
    return 0;
  }
  if (command == "status" || command == "cancel") {
    if (arg.empty()) Usage(command + " needs a query id");
    const obs::Json resp = CheckOk(client.Request(
        ReqHead(command) + ",\"query_id\":\"" + arg + "\"}"));
    if (command == "status") {
      std::cout << "endsystems=" << resp.Find("endsystems")->AsInt()
                << "/" << resp.Find("total")->AsInt() << " complete="
                << (resp.Find("complete")->b ? "true" : "false") << "\n";
      const obs::Json* final_field = resp.Find("final");
      if (final_field != nullptr) {
        std::cout << final_field->AsString() << std::endl;
      }
    }
    return 0;
  }
  if (command == "stats" || command == "shutdown" ||
      command == "drop-clients") {
    const std::string op =
        command == "drop-clients" ? "drop_clients" : command;
    client.SendLine(ReqHead(op) + "}");
    std::cout << client.RecvLine() << std::endl;
    return 0;
  }
  Usage("unknown command " + command);
}
