// seaweed_sim: configurable simulation driver.
//
//   ./build/examples/seaweed_sim [options]
//     --endsystems N        population size               (default 200)
//     --hours H             simulated duration            (default 24)
//     --trace farsite|gnutella  availability model        (default farsite)
//     --save-trace FILE     write the generated trace and exit
//     --load-trace FILE     drive from a saved trace file
//     --query SQL           query to inject (repeatable)
//     --inject-hour H       injection time                (default H/4)
//     --continuous MIN      make queries continuous with this period
//     --seed S              master seed                   (default 1)
//     --transport SPEC      transport decorator stack, outermost first:
//                           e.g. "serializing", "faulty:plan.json",
//                           "serializing,faulty:plan.json", or
//                           "serializing,batching:20,faulty:plan.json"
//     --batching            coalesce same-hop query descriptors into
//                           batched wire messages (shorthand for naming
//                           "batching" in --transport)
//     --cache-eps SEC       bounded-divergence predictor cache staleness
//                           bound in seconds (0 = caching off)
//     --max-active-queries N  admission limit on concurrently active
//                           origin queries (0 = unbounded)
//     --serializing-transport  shorthand for --transport serializing:
//                           round-trip every message through the wire
//                           codec in flight (debug mode; stdout is
//                           bit-identical to the in-memory transport)
//     --lanes K             parallel event lanes (default 0 = serial
//                           engine). Output depends on K, never on the
//                           thread count.
//     --threads N           worker threads for the lanes (default 1);
//                           stdout and --obs-dump are byte-identical for
//                           any N with the same --lanes
//     --encode-in-flight    store queued messages as wire bytes (memory
//                           compaction for large populations)
//     --obs-dump FILE       write metrics + trace spans as JSONL at exit
//
// Prints the completeness predictor, incremental results, and the final
// bandwidth accounting. Example:
//
//   ./build/examples/seaweed_sim --endsystems 300 --hours 12 \
//       --query "SELECT COUNT(*) FROM Flow WHERE Bytes > 20000"
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/export.h"
#include "seaweed/cluster_options.h"
#include "trace/farsite_model.h"
#include "trace/gnutella_model.h"
#include "trace/trace_io.h"

using namespace seaweed;

namespace {

struct Args {
  int endsystems = 200;
  double hours = 24;
  std::string trace_kind = "farsite";
  std::string save_trace;
  std::string load_trace;
  std::vector<std::string> queries;
  double inject_hour = -1;
  double continuous_minutes = 0;
  uint64_t seed = 1;
  std::string transport;
  bool batching = false;
  double cache_eps_s = 0;
  int max_active_queries = 0;
  int lanes = 0;
  int threads = 1;
  bool encode_in_flight = false;
  std::string obs_dump;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    const char* v;
    if (flag == "--endsystems" && (v = need_value())) {
      args->endsystems = std::atoi(v);
    } else if (flag == "--hours" && (v = need_value())) {
      args->hours = std::atof(v);
    } else if (flag == "--trace" && (v = need_value())) {
      args->trace_kind = v;
    } else if (flag == "--save-trace" && (v = need_value())) {
      args->save_trace = v;
    } else if (flag == "--load-trace" && (v = need_value())) {
      args->load_trace = v;
    } else if (flag == "--query" && (v = need_value())) {
      args->queries.push_back(v);
    } else if (flag == "--inject-hour" && (v = need_value())) {
      args->inject_hour = std::atof(v);
    } else if (flag == "--continuous" && (v = need_value())) {
      args->continuous_minutes = std::atof(v);
    } else if (flag == "--seed" && (v = need_value())) {
      args->seed = static_cast<uint64_t>(std::atoll(v));
    } else if (flag == "--transport" && (v = need_value())) {
      args->transport = v;
    } else if (flag == "--serializing-transport") {
      args->transport = args->transport.empty()
                            ? "serializing"
                            : "serializing," + args->transport;
    } else if (flag == "--batching") {
      args->batching = true;
    } else if (flag == "--cache-eps" && (v = need_value())) {
      args->cache_eps_s = std::atof(v);
    } else if (flag == "--max-active-queries" && (v = need_value())) {
      args->max_active_queries = std::atoi(v);
    } else if (flag == "--lanes" && (v = need_value())) {
      args->lanes = std::atoi(v);
    } else if (flag == "--threads" && (v = need_value())) {
      args->threads = std::atoi(v);
    } else if (flag == "--encode-in-flight") {
      args->encode_in_flight = true;
    } else if (flag == "--obs-dump" && (v = need_value())) {
      args->obs_dump = v;
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", flag.c_str());
      return false;
    }
  }
  if (args->endsystems < 2 || args->hours <= 0) {
    std::fprintf(stderr, "need --endsystems >= 2 and --hours > 0\n");
    return false;
  }
  // Validate the transport spec up front so a typo is a usage error with
  // the available layers listed, not a mid-construction crash. "udp"
  // parses (seaweedd hosts it) but a simulation cannot run on it.
  auto layers = ParseTransportSpec(args->transport);
  bool has_udp = false;
  if (layers.ok()) {
    for (const auto& layer : *layers) has_udp = has_udp || layer.kind == "udp";
  }
  if (!layers.ok() || has_udp) {
    std::fprintf(stderr, "--transport %s: %s\navailable layers: %s\n",
                 args->transport.c_str(),
                 layers.ok() ? "\"udp\" is the live socket transport "
                               "(seaweedd only); simulations run in-memory"
                             : layers.status().message().c_str(),
                 KnownTransportLayers());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 1;
  if (args.queries.empty()) {
    args.queries.push_back("SELECT SUM(Bytes) FROM Flow WHERE SrcPort=80");
  }
  SimDuration duration = static_cast<SimDuration>(args.hours * kHour);

  // --- Trace ---
  AvailabilityTrace trace(0, 0);
  if (!args.load_trace.empty()) {
    auto loaded = LoadTraceFromFile(args.load_trace);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load trace: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    trace = std::move(loaded).value();
    args.endsystems = trace.num_endsystems();
  } else if (args.trace_kind == "gnutella") {
    GnutellaModelConfig cfg;
    cfg.seed = args.seed;
    trace = GenerateGnutellaTrace(cfg, args.endsystems, duration + kHour);
  } else {
    FarsiteModelConfig cfg;
    cfg.seed = args.seed;
    trace = GenerateFarsiteTrace(cfg, args.endsystems, duration + kHour);
  }
  std::printf("trace: %d endsystems, mean availability %.1f%%, departure "
              "rate %.2e /online-endsystem/s\n",
              trace.num_endsystems(),
              100 * trace.MeanAvailability(0, duration),
              trace.DepartureRatePerOnline(0, duration));
  if (!args.save_trace.empty()) {
    auto st = SaveTraceToFile(trace, args.save_trace);
    std::printf("%s trace to %s\n", st.ok() ? "saved" : "FAILED to save",
                args.save_trace.c_str());
    return st.ok() ? 0 : 1;
  }

  // --- Cluster ---
  ClusterOptions options;
  options.WithEndsystems(args.endsystems)
      .WithSeed(args.seed)
      .WithKeepTables(args.endsystems <= 500)
      .WithTransport(args.transport)
      .WithLanes(args.lanes)
      .WithThreads(args.threads)
      .WithEncodeInFlight(args.encode_in_flight);
  if (args.batching) options.seaweed().batching = true;
  if (args.cache_eps_s < 0 || args.max_active_queries < 0) {
    std::fprintf(stderr,
                 "--cache-eps and --max-active-queries must be >= 0\n");
    return 1;
  }
  options.seaweed().cache_eps =
      static_cast<SimDuration>(args.cache_eps_s * kSecond);
  options.seaweed().max_active_queries = args.max_active_queries;
  options.anemone().days = 7;
  options.anemone().workstation_flows_per_day = 40;
  auto config = options.Build();
  if (!config.ok()) {
    std::fprintf(stderr, "bad configuration: %s\n",
                 config.status().ToString().c_str());
    return 1;
  }
  SeaweedCluster cluster(*config);
  cluster.DriveFromTrace(trace, duration);

  SimTime inject_at = args.inject_hour >= 0
                          ? static_cast<SimTime>(args.inject_hour * kHour)
                          : duration / 4;
  for (const auto& sql : args.queries) {
    cluster.sim().At(inject_at, [&cluster, sql, &args, duration, inject_at] {
      int origin = -1;
      for (int e = 0; e < cluster.config().num_endsystems; ++e) {
        if (cluster.pastry_node(e)->joined()) {
          origin = e;
          break;
        }
      }
      if (origin < 0) {
        std::printf("!! nobody online at injection time\n");
        return;
      }
      QueryObserver obs;
      obs.on_predictor = [&cluster, sql](const NodeId&,
                                         const CompletenessPredictor& p) {
        std::printf("[%s] predictor for \"%s\":\n",
                    FormatSimTime(cluster.sim().Now()).c_str(), sql.c_str());
        std::printf("    %.0f rows expected over %lld endsystems; now "
                    "%.1f%% | +1h %.1f%% | +12h %.1f%%\n",
                    p.TotalRows(), static_cast<long long>(p.endsystems()),
                    100 * p.CompletenessAt(0), 100 * p.CompletenessAt(kHour),
                    100 * p.CompletenessAt(12 * kHour));
      };
      auto last = std::make_shared<int64_t>(-1);
      obs.on_result = [&cluster, last](const NodeId&,
                                       const db::AggregateResult& r) {
        if (r.rows_matched == *last) return;
        *last = r.rows_matched;
        std::printf("[%s] result update: %lld rows from %lld endsystems\n",
                    FormatSimTime(cluster.sim().Now()).c_str(),
                    static_cast<long long>(r.rows_matched),
                    static_cast<long long>(r.endsystems));
      };
      Result<NodeId> qid = Status::Internal("unset");
      if (args.continuous_minutes > 0) {
        qid = cluster.seaweed_node(origin)->InjectContinuousQuery(
            sql, static_cast<SimDuration>(args.continuous_minutes * kMinute),
            std::move(obs), duration - inject_at);
      } else {
        qid = cluster.InjectQuery(origin, sql, std::move(obs),
                                  duration - inject_at);
      }
      if (!qid.ok()) {
        std::printf("!! query rejected: %s\n",
                    qid.status().ToString().c_str());
      }
    });
  }

  cluster.sim().RunUntil(duration);

  int64_t hours = duration / kHour;
  std::printf("\n--- bandwidth accounting (tx, per online endsystem) ---\n");
  for (int c = 0; c < kNumTrafficCategories; ++c) {
    std::printf("  %-14s %8.2f B/s\n",
                TrafficCategoryName(static_cast<TrafficCategory>(c)),
                cluster.MeanTxPerOnline(0, hours, c));
  }
  std::printf("  %-14s %8.2f B/s\n", "total",
              cluster.MeanTxPerOnline(0, hours));
  std::printf("events executed: %llu, messages sent: %llu\n",
              static_cast<unsigned long long>(cluster.sim().events_executed()),
              static_cast<unsigned long long>(
                  cluster.network().messages_sent()));
  // Debug-mode stats go to stderr so stdout stays bit-identical to the
  // in-memory transport and can be diffed (scripts/check.sh relies on this).
  if (const auto* st = cluster.serializing_transport()) {
    std::fprintf(stderr,
                 "serializing transport: %llu messages round-tripped, "
                 "%llu bytes\n",
                 static_cast<unsigned long long>(st->messages_roundtripped()),
                 static_cast<unsigned long long>(st->bytes_roundtripped()));
  }
  if (const auto* ft = cluster.fault_transport()) {
    std::fprintf(stderr,
                 "fault transport: %llu messages dropped, %llu delayed\n",
                 static_cast<unsigned long long>(ft->injected_drops()),
                 static_cast<unsigned long long>(ft->injected_delays()));
  }
  if (!args.obs_dump.empty()) {
    cluster.PublishStatsGauges();  // final engine/memory snapshot
    Status st = obs::DumpToFile(&cluster.obs().metrics, &cluster.obs().trace,
                                args.obs_dump);
    if (!st.ok()) {
      std::fprintf(stderr, "obs dump failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
