// Data-center scenario (§1.2: "many Internet services run multiple data
// centers... each containing thousands of endsystems"): machines export
// fine-grained performance counters; an automated support system issues
// one-shot diagnostic queries when an alarm fires.
//
//   $ ./build/examples/datacenter_dashboard
//
// Demonstrates: a non-Anemone schema through the same public API, querying
// while a whole "rack" is down (the paper's "why did I get no results from
// rack 10?" motivation), and reading the delay/completeness trade-off to
// distinguish "data missing forever" from "data delayed".
#include <cstdio>
#include <memory>

#include "db/aggregate.h"
#include "seaweed/cluster_options.h"

using namespace seaweed;

namespace {
constexpr int kRacks = 8;
constexpr int kMachinesPerRack = 16;
constexpr int kEndsystems = kRacks * kMachinesPerRack;
}  // namespace

int main() {
  // --- Performance-counter tables: one per machine. ---
  db::Schema schema({
      {"ts", db::ColumnType::kInt64, /*indexed=*/true},
      {"cpu_pct", db::ColumnType::kDouble, false},
      {"p99_latency_us", db::ColumnType::kInt64, /*indexed=*/true},
      {"errors", db::ColumnType::kInt64, /*indexed=*/true},
      {"service", db::ColumnType::kString, /*indexed=*/true},
  });
  std::vector<std::shared_ptr<db::Database>> databases;
  Rng rng(7);
  for (int e = 0; e < kEndsystems; ++e) {
    auto database = std::make_shared<db::Database>();
    auto table = database->CreateTable("Counters", schema);
    int rack = e / kMachinesPerRack;
    const char* service = rack < 3 ? "frontend" : rack < 6 ? "cache" : "db";
    // Rack 5 is the anomaly: elevated latency and error counts.
    bool anomalous = rack == 5;
    for (int i = 0; i < 120; ++i) {  // 2 hours of 1-minute samples
      (*table)->column(0).AppendInt64(i * 60);
      (*table)->column(1).AppendDouble(rng.Uniform(5, anomalous ? 98 : 60));
      (*table)->column(2).AppendInt64(
          static_cast<int64_t>(rng.LogNormal(anomalous ? 9.5 : 7.0, 0.5)));
      (*table)->column(3).AppendInt64(
          static_cast<int64_t>(rng.NextBelow(anomalous ? 50 : 3)));
      (*table)->column(4).AppendString(service);
      (*table)->CommitRow();
    }
    databases.push_back(std::move(database));
  }

  SeaweedCluster cluster(ClusterOptions()
                             .WithEndsystems(kEndsystems)
                             .WithSummaryWireBytes(0),
                         std::make_shared<StaticDataProvider>(databases));

  for (int e = 0; e < kEndsystems; ++e) cluster.BringUp(e);
  cluster.sim().RunUntil(40 * kMinute);  // overlay + metadata replication
  std::printf("data center online: %d machines in %d racks\n",
              cluster.CountJoined(), kRacks);

  // Power event: rack 5 (the anomalous one!) drops entirely.
  std::printf("\n*** rack 5 loses power ***\n");
  for (int e = 5 * kMachinesPerRack; e < 6 * kMachinesPerRack; ++e) {
    cluster.BringDown(e);
  }
  cluster.sim().RunUntil(cluster.sim().Now() + 5 * kMinute);

  // The alarm system asks: how many error events fleet-wide?
  QueryObserver observer;
  observer.on_predictor = [&](const NodeId&,
                              const CompletenessPredictor& p) {
    std::printf("\npredictor: %.0f samples expected from %lld machines\n",
                p.TotalRows(), static_cast<long long>(p.endsystems()));
    std::printf("  completeness now: %.1f%% — the missing %.1f%% is "
                "*predicted, not lost*: Seaweed knows rack 5's data volume "
                "from replicated summaries\n",
                100 * p.CompletenessAt(0),
                100 * (1 - p.CompletenessAt(0)));
  };
  observer.on_result = [&](const NodeId&, const db::AggregateResult& r) {
    auto errors = db::FindAggregate("SUM")->Finalize(r.states[0]);
    auto p99max = db::FindAggregate("MAX")->Finalize(r.states[1]);
    std::printf("[%s] errors=%s, max p99=%sus  (%lld machines reporting)\n",
                FormatSimTime(cluster.sim().Now()).c_str(),
                errors.ok() ? errors->ToString().c_str() : "NULL",
                p99max.ok() ? p99max->ToString().c_str() : "NULL",
                static_cast<long long>(r.endsystems));
  };

  auto qid = cluster.InjectQuery(
      0,
      "SELECT SUM(errors), MAX(p99_latency_us) FROM Counters WHERE "
      "errors > 0",
      std::move(observer));
  if (!qid.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 qid.status().ToString().c_str());
    return 1;
  }
  cluster.sim().RunUntil(cluster.sim().Now() + 5 * kMinute);

  // Facilities restores power; the query is still live, so rack 5's
  // (anomalous) counters stream straight into the same result.
  std::printf("\n*** rack 5 power restored — watch errors and p99 jump as "
              "its data arrives ***\n");
  for (int e = 5 * kMachinesPerRack; e < 6 * kMachinesPerRack; ++e) {
    cluster.BringUp(e);
  }
  cluster.sim().RunUntil(cluster.sim().Now() + 10 * kMinute);

  std::printf("\nthe anomaly was only visible once the unavailable rack's "
              "data arrived — exactly the one-shot, delay-aware use case\n");
  return 0;
}
