// Network-management scenario (the paper's motivating Anemone use case):
// an operator investigates a traffic anomaly with retrospective one-shot
// queries over per-endsystem Flow tables, on an enterprise network with
// realistic diurnal availability.
//
//   $ ./build/examples/network_monitor
//
// Demonstrates: trace-driven churn, the delay/completeness trade-off read
// off the predictor ("accept 95% after N hours or wait for 100%"), and
// in-network aggregation of the operator's queries.
#include <cstdio>

#include "anemone/anemone.h"
#include "db/aggregate.h"
#include "seaweed/cluster_options.h"
#include "trace/farsite_model.h"

using namespace seaweed;

namespace {

void RunOperatorQuery(SeaweedCluster& cluster, const char* label,
                      const std::string& sql, SimDuration watch) {
  std::printf("\n--- %s ---\n    %s\n", label, sql.c_str());
  int origin = -1;
  for (int e = 0; e < cluster.config().num_endsystems; ++e) {
    if (cluster.pastry_node(e)->joined()) {
      origin = e;
      break;
    }
  }
  if (origin < 0) {
    std::printf("    no live endsystem to inject from!\n");
    return;
  }

  struct State {
    double predicted_total = 0;
    int64_t last_rows = -1;
  };
  auto state = std::make_shared<State>();

  QueryObserver observer;
  observer.on_predictor = [state, &cluster](
                              const NodeId&, const CompletenessPredictor& p) {
    state->predicted_total = p.TotalRows();
    std::printf("    predictor: %.0f rows total; now %.1f%% | +1h %.1f%% | "
                "+8h %.1f%% | +24h %.1f%%\n",
                p.TotalRows(), 100 * p.CompletenessAt(0),
                100 * p.CompletenessAt(kHour), 100 * p.CompletenessAt(8 * kHour),
                100 * p.CompletenessAt(24 * kHour));
    std::printf("    delay for 95%% completeness: %s — the operator can "
                "decide to wait or accept\n",
                FormatDuration(p.HorizonForCompleteness(0.95)).c_str());
  };
  observer.on_result = [state, &cluster](const NodeId&,
                                         const db::AggregateResult& r) {
    if (r.rows_matched == state->last_rows) return;  // only print progress
    state->last_rows = r.rows_matched;
    double completeness = state->predicted_total > 0
                              ? 100 * static_cast<double>(r.rows_matched) /
                                    state->predicted_total
                              : 0;
    auto v = db::FindAggregate("SUM")->Finalize(r.states[0]);
    std::printf("    [%s] %lld rows from %lld endsystems (~%.0f%% complete)"
                "%s%s\n",
                FormatSimTime(cluster.sim().Now()).c_str(),
                static_cast<long long>(r.rows_matched),
                static_cast<long long>(r.endsystems), completeness,
                v.ok() ? ", agg=" : "",
                v.ok() ? v->ToString().c_str() : "");
  };

  auto qid = cluster.InjectQuery(origin, sql, std::move(observer), watch);
  if (!qid.ok()) {
    std::printf("    rejected: %s\n", qid.status().ToString().c_str());
    return;
  }
  cluster.sim().RunUntil(cluster.sim().Now() + watch);
}

}  // namespace

int main() {
  const int kEndsystems = 200;

  ClusterOptions options;
  options.WithEndsystems(kEndsystems)
      .WithKeepTables(true)
      .WithSummaryWireBytes(0);
  options.anemone().days = 7;
  options.anemone().workstation_flows_per_day = 40;
  SeaweedCluster cluster(options);

  // Enterprise availability: diurnal desktops, always-on servers.
  FarsiteModelConfig trace_config;
  auto trace = GenerateFarsiteTrace(trace_config, kEndsystems, 3 * kDay);
  cluster.DriveFromTrace(trace, 3 * kDay);

  // Let the system form and replicate metadata; it is now Monday ~01:00.
  cluster.sim().RunUntil(kHour);
  std::printf("enterprise network up: %d/%d endsystems online "
              "(it is %s)\n",
              cluster.CountJoined(), kEndsystems,
              FormatSimTime(cluster.sim().Now()).c_str());
  cluster.sim().RunUntil(2 * kHour);

  // The operator noticed odd web traffic overnight and digs in with the
  // paper's retrospective queries.
  RunOperatorQuery(cluster, "total web traffic over the last 24h",
                   "SELECT SUM(Bytes) FROM Flow WHERE SrcPort=80 AND "
                   "ts <= NOW() AND ts >= NOW() - 86400",
                   2 * kHour);
  RunOperatorQuery(cluster, "how many big flows (possible exfiltration)?",
                   "SELECT COUNT(*) FROM Flow WHERE Bytes > 20000",
                   2 * kHour);
  RunOperatorQuery(cluster, "SMB volume per flow (lateral movement?)",
                   "SELECT AVG(Bytes), MAX(Bytes) FROM Flow WHERE App='SMB'",
                   2 * kHour);

  // Show the maintenance price actually paid for all of this.
  int64_t hours = cluster.sim().Now() / kHour;
  std::printf("\nbackground maintenance cost so far: %.1f B/s per online "
              "endsystem (metadata replication %.1f B/s)\n",
              cluster.MeanTxPerOnline(0, hours),
              cluster.MeanTxPerOnline(
                  0, hours, static_cast<int>(TrafficCategory::kMetadata)));
  return 0;
}
