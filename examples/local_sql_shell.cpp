// Minimal interactive SQL shell over the embedded relational engine —
// useful for exploring the Anemone data model and the SQL subset without a
// simulation. Reads statements from stdin (or runs a scripted demo when
// stdin is not a TTY / with --demo).
//
//   $ ./build/examples/local_sql_shell
//   seaweed> SELECT SUM(Bytes) FROM Flow WHERE App='SMB';
//
// Also prints the data summary (histograms) and what a remote Seaweed
// replica would estimate for each query — next to the true answer — making
// the metadata-based estimation visible.
#include <cstdio>
#include <iostream>
#include <string>

#include "anemone/anemone.h"
#include "db/aggregate.h"
#include "db/database.h"

using namespace seaweed;

namespace {

void RunStatement(const db::Database& database,
                  const db::DatabaseSummary& summary, const std::string& sql) {
  db::ParseOptions options;
  options.now_unix_seconds = 21 * 86400;
  auto parsed = db::ParseSelect(sql, options);
  if (!parsed.ok()) {
    std::printf("  parse error: %s\n", parsed.status().ToString().c_str());
    return;
  }
  if (!parsed->IsAggregateOnly()) {
    // Projection: print a few rows.
    const db::Table* table = database.FindTable(parsed->table);
    if (!table) {
      std::printf("  no such table: %s\n", parsed->table.c_str());
      return;
    }
    auto rows = db::ExecuteSelect(*table, *parsed, 10);
    if (!rows.ok()) {
      std::printf("  error: %s\n", rows.status().ToString().c_str());
      return;
    }
    for (const auto& name : rows->column_names) std::printf("%14s", name.c_str());
    std::printf("\n");
    for (const auto& row : rows->rows) {
      for (const auto& v : row) std::printf("%14s", v.ToString().c_str());
      std::printf("\n");
    }
    std::printf("  (%zu rows shown, limit 10)\n", rows->rows.size());
    return;
  }
  auto result = database.ExecuteAggregate(*parsed);
  if (!result.ok()) {
    std::printf("  error: %s\n", result.status().ToString().c_str());
    return;
  }
  for (size_t i = 0; i < parsed->items.size(); ++i) {
    const auto& item = parsed->items[i];
    auto v = item.func->Finalize(result->states[i], item.EffectiveParam());
    std::printf("  %s(%s) = %s\n", item.func->name().c_str(),
                item.column.empty() ? "*" : item.column.c_str(),
                v.ok() ? v->ToString().c_str() : "NULL");
  }
  std::printf("  rows matched: %lld (exact) | %.0f (histogram estimate a "
              "Seaweed replica would use)\n",
              static_cast<long long>(result->rows_matched),
              summary.EstimateRows(*parsed));
}

}  // namespace

int main(int argc, char** argv) {
  bool demo = argc > 1 && std::string(argv[1]) == "--demo";

  anemone::AnemoneConfig config;
  config.days = 21;
  config.workstation_flows_per_day = 300;
  db::Database database;
  auto stats = anemone::GenerateEndsystemData(config, /*index=*/1, &database);
  auto summary = database.BuildSummary();

  std::printf("loaded synthetic Anemone endsystem dataset:\n");
  std::printf("  Flow rows: %lld, data: %zu bytes, summary (metadata h): "
              "%zu bytes\n",
              static_cast<long long>(stats.flow_rows), stats.data_bytes,
              summary.EncodedBytes());
  std::printf("tables: Flow(ts, Interval, SrcIP, DstIP, SrcPort, DstPort, "
              "LocalPort, Protocol, App, Bytes, Packets)\n\n");

  const char* kDemo[] = {
      "SELECT COUNT(*) FROM Flow",
      "SELECT SUM(Bytes) FROM Flow WHERE SrcPort=80",
      "SELECT COUNT(*) FROM Flow WHERE Bytes > 20000",
      "SELECT AVG(Bytes) FROM Flow WHERE App='SMB'",
      "SELECT SUM(Packets) FROM Flow WHERE LocalPort < 1024",
      "SELECT MIN(Bytes), MAX(Bytes) FROM Flow WHERE App='HTTP'",
      "SELECT ts, App, Bytes FROM Flow WHERE Bytes > 400000",
  };

  bool interactive = !demo && isatty(0);
  if (!interactive) {
    for (const char* sql : kDemo) {
      std::printf("seaweed> %s\n", sql);
      RunStatement(database, summary, sql);
      std::printf("\n");
    }
    return 0;
  }

  std::string line;
  std::printf("seaweed> ");
  while (std::getline(std::cin, line)) {
    if (line == "quit" || line == "exit") break;
    if (!line.empty()) RunStatement(database, summary, line);
    std::printf("seaweed> ");
  }
  return 0;
}
