// Quickstart: stand up a small simulated Seaweed deployment, inject a
// query, and watch the completeness predictor and incremental results.
//
//   $ ./build/examples/quickstart
//
// This walks the full public API surface:
//   1. build per-endsystem databases (any relational data works; here a
//      tiny hand-rolled inventory table),
//   2. construct a SeaweedCluster (simulated network + Pastry overlay +
//      Seaweed nodes),
//   3. bring endsystems up — some stay down to show delay-aware querying,
//   4. inject a one-shot aggregate query and observe (a) the completeness
//      predictor and (b) incremental results as down endsystems return.
#include <cstdio>
#include <memory>

#include "db/aggregate.h"
#include "seaweed/cluster_options.h"

using namespace seaweed;

int main() {
  const int kEndsystems = 24;

  // --- 1. Per-endsystem data: a small "Inventory" table each. ---
  db::Schema schema({
      {"sku", db::ColumnType::kInt64, /*indexed=*/true},
      {"qty", db::ColumnType::kInt64, /*indexed=*/true},
      {"warehouse", db::ColumnType::kString, /*indexed=*/true},
  });
  std::vector<std::shared_ptr<db::Database>> databases;
  Rng rng(2024);
  for (int e = 0; e < kEndsystems; ++e) {
    auto database = std::make_shared<db::Database>();
    auto table = database->CreateTable("Inventory", schema);
    for (int i = 0; i < 50; ++i) {
      (*table)->column(0).AppendInt64(static_cast<int64_t>(rng.NextBelow(1000)));
      (*table)->column(1).AppendInt64(static_cast<int64_t>(rng.NextBelow(100)));
      (*table)->column(2).AppendString(e % 3 == 0 ? "east" : "west");
      (*table)->CommitRow();
    }
    databases.push_back(std::move(database));
  }

  // --- 2. Cluster. ---
  SeaweedCluster cluster(ClusterOptions()
                             .WithEndsystems(kEndsystems)
                             .WithSummaryWireBytes(0),  // real summary sizes
                         std::make_shared<StaticDataProvider>(databases));

  // --- 3. Bring everything up so metadata gets replicated, then lose four
  // endsystems (a powered-off rack, laptops going home...). Seaweed can
  // only predict for endsystems it has seen before — the paper's
  // H_U(-inf, 0) guarantee.
  for (int e = 0; e < kEndsystems; ++e) cluster.BringUp(e);
  cluster.sim().RunUntil(2 * kMinute);
  std::printf("overlay formed: %d/%d endsystems joined\n",
              cluster.CountJoined(), kEndsystems);
  cluster.sim().RunUntil(40 * kMinute);  // a couple of metadata push periods

  std::printf("4 endsystems go offline...\n");
  for (int e = kEndsystems - 4; e < kEndsystems; ++e) cluster.BringDown(e);
  // Let leafset heartbeats detect the failures and mark the metadata
  // replicas down.
  cluster.sim().RunUntil(cluster.sim().Now() + 3 * kMinute);

  // --- 4. Inject a query. ---
  QueryObserver observer;
  observer.on_predictor = [&](const NodeId&,
                              const CompletenessPredictor& predictor) {
    std::printf("\n[%s] completeness predictor arrived:\n",
                FormatSimTime(cluster.sim().Now()).c_str());
    std::printf("  expected total rows : %.0f across %lld endsystems\n",
                predictor.TotalRows(),
                static_cast<long long>(predictor.endsystems()));
    std::printf("  available now       : %.1f%%\n",
                100 * predictor.CompletenessAt(0));
    std::printf("  predictor size      : %zu bytes (constant)\n",
                predictor.EncodedBytes());
  };
  observer.on_result = [&](const NodeId&, const db::AggregateResult& result) {
    auto sum = db::FindAggregate("SUM")->Finalize(result.states[0]);
    std::printf("[%s] incremental result: SUM(qty)=%s from %lld endsystems "
                "(%lld rows)\n",
                FormatSimTime(cluster.sim().Now()).c_str(),
                sum.ok() ? sum->ToString().c_str() : "NULL",
                static_cast<long long>(result.endsystems),
                static_cast<long long>(result.rows_matched));
  };

  auto query_id = cluster.InjectQuery(
      0, "SELECT SUM(qty) FROM Inventory WHERE warehouse = 'west'",
      std::move(observer));
  if (!query_id.ok()) {
    std::fprintf(stderr, "query rejected: %s\n",
                 query_id.status().ToString().c_str());
    return 1;
  }
  std::printf("\ninjected query %s\n", query_id->ToShortString().c_str());

  // Let the predictor and the first wave of results arrive.
  cluster.sim().RunUntil(cluster.sim().Now() + 5 * kMinute);

  // --- 5. The four down endsystems come back; their rows flow in. ---
  std::printf("\nbringing up the 4 late endsystems...\n");
  for (int e = kEndsystems - 4; e < kEndsystems; ++e) cluster.BringUp(e);
  cluster.sim().RunUntil(cluster.sim().Now() + 10 * kMinute);

  std::printf("\ndone: query persisted until all endsystems contributed.\n");
  return 0;
}
